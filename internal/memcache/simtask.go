package memcache

import (
	"errors"
	"strconv"

	"imca/internal/blob"
	"imca/internal/fabric"
	"imca/internal/optrace"
	"imca/internal/sim"
)

// Task-engine variants of the SimClient operations. Each mirrors its
// blocking sibling's wire traffic, health accounting, and schedule
// consumption exactly, delivering the result to a continuation instead of
// returning it; see sim.Task for the determinism contract.

// GetT is Get for the task engine: k receives (item, true) on a hit and
// (nil, false) on any flavour of miss.
//
//imcalint:hotpath 10k-tenant open-loop experiment: per-op allocations on this chain are the marginal cost (ROADMAP item 2); known ones are baselined for burn-down
func (c *SimClient) GetT(t *sim.Task, key string, k func(*Item, bool)) {
	idx, srv := c.pick(key)
	sp := optrace.StartSpan(t, optrace.LayerMCD, "get")
	sp.SetAttr("server", srv.node.Name())
	t0 := t.Now()
	if !c.admit(t, idx) {
		sp.SetAttr("result", "ejected")
		sp.End(t)
		c.getHist.ObserveSince(t, t0)
		k(nil, false)
		return
	}
	c.node.CallT(t, srv.node, ServiceName, &GetReq{Keys: []string{key}}, func(m fabric.Msg, err error) {
		if err != nil {
			sp.SetAttr("result", c.fail(t, idx, err, false))
			sp.End(t)
			c.getHist.ObserveSince(t, t0)
			k(nil, false)
			return
		}
		resp := m.(*GetResp)
		if resp.Down {
			sp.SetAttr("result", c.fail(t, idx, nil, true))
			sp.End(t)
			c.getHist.ObserveSince(t, t0)
			k(nil, false)
			return
		}
		c.observe(t, idx, true)
		if len(resp.Items) == 0 {
			sp.SetAttr("result", "miss")
			sp.End(t)
			c.getHist.ObserveSince(t, t0)
			k(nil, false)
			return
		}
		sp.SetAttr("result", "hit")
		sp.SetAttr("bytes", strconv.FormatInt(resp.Items[0].Value.Len(), 10))
		sp.End(t)
		c.getHist.ObserveSince(t, t0)
		k(resp.Items[0], true)
	})
}

// GetMultiT is GetMulti for the task engine. The scatter-gather workers
// remain Procs — they are bounded by the MCD bank size, not the client
// count, and spawning them costs the same one schedule as Proc.Spawn — so
// only the caller side changes representation.
func (c *SimClient) GetMultiT(t *sim.Task, keys []string, k func(map[string]*Item)) {
	if len(keys) == 1 {
		c.GetT(t, keys[0], func(it *Item, ok bool) {
			if !ok {
				k(map[string]*Item{})
				return
			}
			k(map[string]*Item{keys[0]: it})
		})
		return
	}
	t0 := t.Now()
	byServer := make(map[int][]string)
	for _, key := range keys {
		i, _ := c.pick(key)
		byServer[i] = append(byServer[i], key)
	}
	out := make(map[string]*Item, len(keys))
	var events []*sim.Event
	var idxs []int
	for i := range c.servers { // deterministic order
		ks, ok := byServer[i]
		if !ok {
			continue
		}
		if !c.admit(t, i) {
			continue // ejected: every key an instant miss
		}
		i, s := i, c.servers[i]
		ev := sim.NewEvent(t.Env())
		worker := t.Env().Process("mcd-get", func(q *sim.Proc) {
			sp := optrace.StartSpan(q, optrace.LayerMCD, "getmulti")
			sp.SetAttr("server", s.node.Name())
			sp.SetAttr("keys", strconv.Itoa(len(ks)))
			m, err := c.node.Call(q, s.node, ServiceName, &GetReq{Keys: ks})
			if err != nil {
				if errors.Is(err, fabric.ErrUnreachable) {
					sp.SetAttr("result", "unreachable")
				} else {
					sp.SetAttr("result", "deadline")
				}
				sp.End(q)
				ev.Trigger(mcdReply{err: err})
				return
			}
			resp := m.(*GetResp)
			switch {
			case resp.Down:
				sp.SetAttr("result", "down")
			case len(resp.Items) == len(ks):
				sp.SetAttr("result", "hit")
			default:
				sp.SetAttr("result", "partial")
			}
			sp.End(q)
			ev.Trigger(mcdReply{resp: resp})
		})
		optrace.Fork(t, worker)
		events = append(events, ev)
		idxs = append(idxs, i)
	}
	// Collect replies in spawn order, as GetMulti's Wait loop does. The
	// recursion depth is bounded by the bank size.
	var collect func(n int)
	collect = func(n int) {
		if n == len(events) {
			c.multiHist.ObserveSince(t, t0)
			k(out)
			return
		}
		events[n].WaitT(t, func(v interface{}) {
			r := v.(mcdReply)
			switch {
			case r.err != nil:
				c.fail(t, idxs[n], r.err, false)
			case r.resp.Down:
				c.fail(t, idxs[n], nil, true)
			default:
				c.observe(t, idxs[n], true)
				for _, it := range r.resp.Items {
					out[it.Key] = it
				}
			}
			collect(n + 1)
		})
	}
	collect(0)
}

// DeleteT is Delete for the task engine; k receives Delete's found
// result. Ejection and failure semantics mirror Delete exactly: an
// ejected or unreachable MCD absorbs the delete without a wire request,
// per the documented fault-model boundary.
func (c *SimClient) DeleteT(t *sim.Task, key string, k func(bool)) {
	idx, srv := c.pick(key)
	sp := optrace.StartSpan(t, optrace.LayerMCD, "delete")
	sp.SetAttr("server", srv.node.Name())
	if !c.admit(t, idx) {
		sp.SetAttr("result", "ejected")
		sp.End(t)
		k(false)
		return
	}
	c.node.CallT(t, srv.node, ServiceName, &DelReq{Key: key}, func(m fabric.Msg, err error) {
		if err != nil {
			sp.SetAttr("result", c.fail(t, idx, err, false))
			sp.End(t)
			k(false)
			return
		}
		resp := m.(*DelResp)
		if resp.Down {
			sp.SetAttr("result", c.fail(t, idx, nil, true))
			sp.End(t)
			k(false)
			return
		}
		c.observe(t, idx, true)
		sp.End(t)
		k(resp.Found)
	})
}

// SetT is Set for the task engine; k receives Set's error result.
func (c *SimClient) SetT(t *sim.Task, key string, value blob.Blob, k func(error)) {
	idx, srv := c.pick(key)
	sp := optrace.StartSpan(t, optrace.LayerMCD, "set")
	sp.SetAttr("server", srv.node.Name())
	sp.SetAttr("bytes", strconv.FormatInt(value.Len(), 10))
	t0 := t.Now()
	if !c.admit(t, idx) {
		sp.SetAttr("result", "ejected")
		sp.End(t)
		c.setHist.ObserveSince(t, t0)
		k(ErrServerDown)
		return
	}
	c.node.CallT(t, srv.node, ServiceName, &SetReq{Item: &Item{Key: key, Value: value}}, func(m fabric.Msg, err error) {
		if err != nil {
			sp.SetAttr("result", c.fail(t, idx, err, false))
			sp.End(t)
			c.setHist.ObserveSince(t, t0)
			k(err)
			return
		}
		resp := m.(*SetResp)
		switch {
		case resp.Down:
			sp.SetAttr("result", c.fail(t, idx, nil, true))
			sp.End(t)
			c.setHist.ObserveSince(t, t0)
			k(ErrServerDown)
		case resp.Err != "":
			c.observe(t, idx, true)
			sp.SetAttr("result", "error")
			sp.End(t)
			c.setHist.ObserveSince(t, t0)
			k(ErrNotStored)
		default:
			c.observe(t, idx, true)
			sp.SetAttr("result", "stored")
			sp.End(t)
			c.setHist.ObserveSince(t, t0)
			k(nil)
		}
	})
}
