package memcache

import (
	"errors"
	"strconv"

	"imca/internal/blob"
	"imca/internal/fabric"
	"imca/internal/flight"
	"imca/internal/optrace"
	"imca/internal/sim"
)

// Task-engine variants of the SimClient operations. Each mirrors its
// blocking sibling's wire traffic, health accounting, and schedule
// consumption exactly, delivering the result to a continuation instead of
// returning it; see sim.Task for the determinism contract.

// getOp is GetT's pooled per-operation frame: the request (whose Keys
// slice permanently aliases the op's one-element key buffer), the
// completion continuation prebound as a method value, and the span/latency
// bookkeeping the closure used to capture. The op returns to its client's
// pool when the fabric recycles the request — after both the continuation
// and the far daemon are done with it, which is what makes reuse safe even
// for deadline-abandoned calls whose request is still being served.
type getOp struct {
	c   *SimClient
	t   *sim.Task
	k   func(*Item, bool)
	sp  *optrace.Span
	idx int
	// next is the replica index to fail over to on a failed leg, -1 for
	// none; the failover leg itself always carries -1.
	next   int
	t0     sim.Time
	req    GetReq
	key    [1]string
	fnDone func(fabric.Msg, error)
}

func newGetOp(c *SimClient) *getOp {
	op := &getOp{c: c}
	op.req.Keys = op.key[:1]
	op.req.op = op
	op.fnDone = op.done
	return op
}

func (c *SimClient) takeGetOp() *getOp {
	if n := len(c.getOps); n > 0 {
		op := c.getOps[n-1]
		c.getOps[n-1] = nil
		c.getOps = c.getOps[:n-1]
		return op
	}
	return newGetOp(c)
}

func (op *getOp) release() {
	op.t, op.k, op.sp = nil, nil, nil
	op.key[0] = ""
	op.c.getOps = append(op.c.getOps, op)
}

func (op *getOp) done(m fabric.Msg, err error) {
	c, t, sp := op.c, op.t, op.sp
	if err != nil {
		sp.SetAttr("result", c.fail(t, op.idx, err, false))
		sp.End(t)
		c.getHist.ObserveSince(t, op.t0)
		if op.next >= 0 {
			c.failoverGetT(t, op.next, op.key[0], op.k)
			return
		}
		op.k(nil, false)
		return
	}
	resp := m.(*GetResp)
	if resp.Down {
		sp.SetAttr("result", c.fail(t, op.idx, nil, true))
		sp.End(t)
		c.getHist.ObserveSince(t, op.t0)
		if op.next >= 0 {
			c.failoverGetT(t, op.next, op.key[0], op.k)
			return
		}
		op.k(nil, false)
		return
	}
	c.observe(t, op.idx, true)
	c.observeLatency(t, op.idx, t.Now().Sub(op.t0))
	if len(resp.Items) == 0 {
		sp.SetAttr("result", "miss")
		sp.End(t)
		c.getHist.ObserveSince(t, op.t0)
		op.k(nil, false)
		return
	}
	if sp != nil {
		sp.SetAttr("result", "hit")
		sp.SetAttr("bytes", strconv.FormatInt(resp.Items[0].Value.Len(), 10))
		sp.End(t)
	}
	c.getHist.ObserveSince(t, op.t0)
	// The item points into the pooled response: valid through k, reclaimed
	// when the fabric recycles the response after k returns.
	op.k(resp.Items[0], true)
}

// GetT is Get for the task engine: k receives (item, true) on a hit and
// (nil, false) on any flavour of miss. A hit's item aliases pooled response
// storage and is valid only until k returns; continuation code copies what
// it keeps, exactly as it would from a network buffer.
//
//imcalint:hotpath 10k-tenant open-loop experiment: per-op allocations on this chain are the marginal cost (ROADMAP item 2); known ones are baselined for burn-down
func (c *SimClient) GetT(t *sim.Task, key string, k func(*Item, bool)) {
	idx, srv := c.pick(key)
	next := c.replicaNext(key, idx)
	sp := optrace.StartSpan(t, optrace.LayerMCD, "get")
	sp.SetAttr("server", srv.node.Name())
	t0 := t.Now()
	if !c.admitRead(t, idx) {
		sp.SetAttr("result", "ejected")
		sp.End(t)
		c.getHist.ObserveSince(t, t0)
		if next >= 0 {
			// Dispatched through the stored function value: the failover
			// leg is exceptional by construction and stays off the
			// statically-audited hot chain.
			c.fnGetFailover(t, next, key, k)
			return
		}
		k(nil, false)
		return
	}
	op := c.takeGetOp()
	op.t, op.k, op.sp, op.idx, op.next, op.t0 = t, k, sp, idx, next, t0
	op.key[0] = key
	c.bindings[idx].CallT(t, &op.req, op.fnDone)
}

// failoverGetT records the replica retry and runs GetT's second leg,
// which itself has no further failover target. Reached only through the
// fnGetFailover function value (from GetT's admission gate) or from
// getOp.done (off the static hot chain by the same stored-value idiom).
func (c *SimClient) failoverGetT(t *sim.Task, next int, key string, k func(*Item, bool)) {
	c.failovers++
	c.fr.Append(t.Now(), flight.KindFailover, c.node.Name(), c.servers[next].node.Name(), 0)
	srv := c.servers[next]
	sp := optrace.StartSpan(t, optrace.LayerMCD, "get")
	sp.SetAttr("server", srv.node.Name())
	t0 := t.Now()
	if !c.admitRead(t, next) {
		sp.SetAttr("result", "ejected")
		sp.End(t)
		c.getHist.ObserveSince(t, t0)
		k(nil, false)
		return
	}
	op := c.takeGetOp()
	op.t, op.k, op.sp, op.idx, op.next, op.t0 = t, k, sp, next, -1, t0
	op.key[0] = key
	c.bindings[next].CallT(t, &op.req, op.fnDone)
}

// GetMultiT is GetMulti for the task engine. The scatter-gather workers
// remain Procs — they are bounded by the MCD bank size, not the client
// count, and spawning them costs the same one schedule as Proc.Spawn — so
// only the caller side changes representation.
func (c *SimClient) GetMultiT(t *sim.Task, keys []string, k func(map[string]*Item)) {
	if len(keys) == 1 {
		c.GetT(t, keys[0], func(it *Item, ok bool) {
			if !ok {
				k(map[string]*Item{})
				return
			}
			k(map[string]*Item{keys[0]: it})
		})
		return
	}
	t0 := t.Now()
	byServer := make(map[int][]string)
	for _, key := range keys {
		i := c.routeRead(t, key)
		byServer[i] = append(byServer[i], key)
	}
	out := make(map[string]*Item, len(keys))
	var events []*sim.Event
	var idxs []int
	for i := range c.servers { // deterministic order
		ks, ok := byServer[i]
		if !ok {
			continue
		}
		if !c.admitRead(t, i) {
			continue // ejected: every key an instant miss
		}
		i, s := i, c.servers[i]
		ev := sim.NewEvent(t.Env())
		worker := t.Env().Process("mcd-get", func(q *sim.Proc) {
			sp := optrace.StartSpan(q, optrace.LayerMCD, "getmulti")
			sp.SetAttr("server", s.node.Name())
			sp.SetAttr("keys", strconv.Itoa(len(ks)))
			m, err := c.node.Call(q, s.node, ServiceName, &GetReq{Keys: ks})
			if err != nil {
				if errors.Is(err, fabric.ErrUnreachable) {
					sp.SetAttr("result", "unreachable")
				} else {
					sp.SetAttr("result", "deadline")
				}
				sp.End(q)
				ev.Trigger(mcdReply{err: err})
				return
			}
			resp := m.(*GetResp)
			switch {
			case resp.Down:
				sp.SetAttr("result", "down")
			case len(resp.Items) == len(ks):
				sp.SetAttr("result", "hit")
			default:
				sp.SetAttr("result", "partial")
			}
			sp.End(q)
			ev.Trigger(mcdReply{resp: resp})
		})
		optrace.Fork(t, worker)
		events = append(events, ev)
		idxs = append(idxs, i)
	}
	// Collect replies in spawn order, as GetMulti's Wait loop does. The
	// recursion depth is bounded by the bank size.
	var collect func(n int)
	collect = func(n int) {
		if n == len(events) {
			c.multiHist.ObserveSince(t, t0)
			k(out)
			return
		}
		events[n].WaitT(t, func(v interface{}) {
			r := v.(mcdReply)
			switch {
			case r.err != nil:
				c.fail(t, idxs[n], r.err, false)
			case r.resp.Down:
				c.fail(t, idxs[n], nil, true)
			default:
				c.observe(t, idxs[n], true)
				for _, it := range r.resp.Items {
					out[it.Key] = it
				}
			}
			collect(n + 1)
		})
	}
	collect(0)
}

// delOp is DeleteT's pooled per-operation frame; see getOp.
type delOp struct {
	c      *SimClient
	t      *sim.Task
	k      func(bool)
	sp     *optrace.Span
	idx    int
	req    DelReq
	fnDone func(fabric.Msg, error)
}

func newDelOp(c *SimClient) *delOp {
	op := &delOp{c: c}
	op.req.op = op
	op.fnDone = op.done
	return op
}

func (c *SimClient) takeDelOp() *delOp {
	if n := len(c.delOps); n > 0 {
		op := c.delOps[n-1]
		c.delOps[n-1] = nil
		c.delOps = c.delOps[:n-1]
		return op
	}
	return newDelOp(c)
}

func (op *delOp) release() {
	op.t, op.k, op.sp = nil, nil, nil
	op.req.Key = ""
	op.c.delOps = append(op.c.delOps, op)
}

func (op *delOp) done(m fabric.Msg, err error) {
	c, t, sp := op.c, op.t, op.sp
	if err != nil {
		sp.SetAttr("result", c.fail(t, op.idx, err, false))
		sp.End(t)
		op.k(false)
		return
	}
	resp := m.(*DelResp)
	if resp.Down {
		sp.SetAttr("result", c.fail(t, op.idx, nil, true))
		sp.End(t)
		op.k(false)
		return
	}
	c.observe(t, op.idx, true)
	sp.End(t)
	op.k(resp.Found)
}

// DeleteT is Delete for the task engine; k receives Delete's found
// result. Ejection and failure semantics mirror Delete exactly: an
// ejected or unreachable MCD absorbs the delete without a wire request,
// per the documented fault-model boundary. With replication on, both
// copies are deleted in sequence, as Delete does.
func (c *SimClient) DeleteT(t *sim.Task, key string, k func(bool)) {
	idx, _ := c.pick(key)
	next := c.replicaNext(key, idx)
	if next < 0 {
		c.delOnT(t, idx, key, k)
		return
	}
	c.delOnT(t, idx, key, func(found bool) {
		c.delOnT(t, next, key, func(found2 bool) { k(found || found2) })
	})
}

// delOnT runs one DeleteT leg against server idx.
func (c *SimClient) delOnT(t *sim.Task, idx int, key string, k func(bool)) {
	srv := c.servers[idx]
	sp := optrace.StartSpan(t, optrace.LayerMCD, "delete")
	sp.SetAttr("server", srv.node.Name())
	if !c.admit(t, idx) {
		sp.SetAttr("result", "ejected")
		sp.End(t)
		k(false)
		return
	}
	op := c.takeDelOp()
	op.t, op.k, op.sp, op.idx = t, k, sp, idx
	op.req.Key = key
	c.bindings[idx].CallT(t, &op.req, op.fnDone)
}

// setOp is SetT's pooled per-operation frame; the request's Item
// permanently points at the op's embedded item, rebuilt per call (the
// store copies on insert, so reuse is safe the moment Set returns).
type setOp struct {
	c      *SimClient
	t      *sim.Task
	k      func(error)
	sp     *optrace.Span
	idx    int
	t0     sim.Time
	item   Item
	req    SetReq
	fnDone func(fabric.Msg, error)
}

func newSetOp(c *SimClient) *setOp {
	op := &setOp{c: c}
	op.req.Item = &op.item
	op.req.op = op
	op.fnDone = op.done
	return op
}

func (c *SimClient) takeSetOp() *setOp {
	if n := len(c.setOps); n > 0 {
		op := c.setOps[n-1]
		c.setOps[n-1] = nil
		c.setOps = c.setOps[:n-1]
		return op
	}
	return newSetOp(c)
}

func (op *setOp) release() {
	op.t, op.k, op.sp = nil, nil, nil
	op.item = Item{}
	op.c.setOps = append(op.c.setOps, op)
}

func (op *setOp) done(m fabric.Msg, err error) {
	c, t, sp := op.c, op.t, op.sp
	if err != nil {
		sp.SetAttr("result", c.fail(t, op.idx, err, false))
		sp.End(t)
		c.setHist.ObserveSince(t, op.t0)
		op.k(err)
		return
	}
	resp := m.(*SetResp)
	switch {
	case resp.Down:
		sp.SetAttr("result", c.fail(t, op.idx, nil, true))
		sp.End(t)
		c.setHist.ObserveSince(t, op.t0)
		op.k(ErrServerDown)
	case resp.Err != "":
		c.observe(t, op.idx, true)
		sp.SetAttr("result", "error")
		sp.End(t)
		c.setHist.ObserveSince(t, op.t0)
		op.k(ErrNotStored)
	default:
		c.observe(t, op.idx, true)
		sp.SetAttr("result", "stored")
		sp.End(t)
		c.setHist.ObserveSince(t, op.t0)
		op.k(nil)
	}
}

// SetT is Set for the task engine; k receives Set's error result. With
// replication on, the replica leg runs after the primary leg and the
// primary's result is what k sees, as in Set.
func (c *SimClient) SetT(t *sim.Task, key string, value blob.Blob, k func(error)) {
	idx, _ := c.pick(key)
	next := c.replicaNext(key, idx)
	if next < 0 {
		c.setOnT(t, idx, key, value, k)
		return
	}
	c.setOnT(t, idx, key, value, func(err error) {
		c.setOnT(t, next, key, value, func(error) { k(err) })
	})
}

// setOnT runs one SetT leg against server idx.
func (c *SimClient) setOnT(t *sim.Task, idx int, key string, value blob.Blob, k func(error)) {
	srv := c.servers[idx]
	sp := optrace.StartSpan(t, optrace.LayerMCD, "set")
	sp.SetAttr("server", srv.node.Name())
	if sp != nil {
		sp.SetAttr("bytes", strconv.FormatInt(value.Len(), 10))
	}
	t0 := t.Now()
	if !c.admit(t, idx) {
		sp.SetAttr("result", "ejected")
		sp.End(t)
		c.setHist.ObserveSince(t, t0)
		k(ErrServerDown)
		return
	}
	op := c.takeSetOp()
	op.t, op.k, op.sp, op.idx, op.t0 = t, k, sp, idx, t0
	op.item = Item{Key: key, Value: value}
	c.bindings[idx].CallT(t, &op.req, op.fnDone)
}
