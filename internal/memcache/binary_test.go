package memcache

import (
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"testing"
)

// binFrame builds a binary-protocol request frame.
func binFrame(opcode byte, key string, extras, value []byte, cas uint64) []byte {
	buf := make([]byte, 24, 24+len(extras)+len(key)+len(value))
	buf[0] = binReqMagic
	buf[1] = opcode
	binary.BigEndian.PutUint16(buf[2:], uint16(len(key)))
	buf[4] = uint8(len(extras))
	binary.BigEndian.PutUint32(buf[8:], uint32(len(extras)+len(key)+len(value)))
	binary.BigEndian.PutUint32(buf[12:], 0xdeadbeef)
	binary.BigEndian.PutUint64(buf[16:], cas)
	buf = append(buf, extras...)
	buf = append(buf, key...)
	buf = append(buf, value...)
	return buf
}

func setExtras(flags, expiry uint32) []byte {
	e := make([]byte, 8)
	binary.BigEndian.PutUint32(e[0:], flags)
	binary.BigEndian.PutUint32(e[4:], expiry)
	return e
}

// binExchange runs frames through ServeBinaryConn and returns all response
// frames parsed in order.
type binResp struct {
	h     binHeader
	extra []byte
	key   []byte
	value []byte
}

func binExchange(t *testing.T, frames ...[]byte) []binResp {
	t.Helper()
	store := newTestStore(16)
	return binExchangeOn(t, store, frames...)
}

func binExchangeOn(t *testing.T, store *Store, frames ...[]byte) []binResp {
	t.Helper()
	var in bytes.Buffer
	for _, f := range frames {
		in.Write(f)
	}
	var out bytes.Buffer
	err := ServeBinaryConn(store, readWriter{r: newStringReaderFromBytes(in.Bytes()), w: &out})
	if err != nil && err != io.EOF {
		t.Fatalf("ServeBinaryConn: %v", err)
	}
	var resps []binResp
	r := bytes.NewReader(out.Bytes())
	for {
		h, err := readBinHeader(r)
		if err == io.EOF {
			return resps
		}
		if err != nil {
			t.Fatalf("parse response header: %v", err)
		}
		if h.magic != binRespMagic {
			t.Fatalf("bad response magic 0x%02x", h.magic)
		}
		body := make([]byte, h.bodyLen)
		if _, err := io.ReadFull(r, body); err != nil {
			t.Fatalf("response body: %v", err)
		}
		resps = append(resps, binResp{
			h:     h,
			extra: body[:h.extrasLen],
			key:   body[h.extrasLen : int(h.extrasLen)+int(h.keyLen)],
			value: body[int(h.extrasLen)+int(h.keyLen):],
		})
	}
}

func TestBinarySetGetRoundTrip(t *testing.T) {
	resps := binExchange(t,
		binFrame(binOpSet, "bkey", setExtras(42, 0), []byte("bvalue"), 0),
		binFrame(binOpGet, "bkey", nil, nil, 0),
	)
	if len(resps) != 2 {
		t.Fatalf("got %d responses", len(resps))
	}
	if resps[0].h.status != binStatusOK {
		t.Fatalf("set status = %d", resps[0].h.status)
	}
	if resps[0].h.cas == 0 {
		t.Error("set response carries no CAS")
	}
	get := resps[1]
	if get.h.status != binStatusOK || string(get.value) != "bvalue" {
		t.Fatalf("get = status %d value %q", get.h.status, get.value)
	}
	if binary.BigEndian.Uint32(get.extra) != 42 {
		t.Errorf("flags = %d, want 42", binary.BigEndian.Uint32(get.extra))
	}
	if get.h.opaque != 0xdeadbeef {
		t.Error("opaque not echoed")
	}
}

func TestBinaryGetMiss(t *testing.T) {
	resps := binExchange(t, binFrame(binOpGet, "missing", nil, nil, 0))
	if resps[0].h.status != binStatusKeyNotFound {
		t.Errorf("status = %d, want KeyNotFound", resps[0].h.status)
	}
}

func TestBinaryQuietGetSuppressesMiss(t *testing.T) {
	resps := binExchange(t,
		binFrame(binOpGetQ, "missing", nil, nil, 0),
		binFrame(binOpNoop, "", nil, nil, 0),
	)
	// Only the noop responds.
	if len(resps) != 1 || resps[0].h.opcode != binOpNoop {
		t.Fatalf("responses = %d, first opcode 0x%02x", len(resps), resps[0].h.opcode)
	}
}

func TestBinaryGetKReturnsKey(t *testing.T) {
	resps := binExchange(t,
		binFrame(binOpSet, "kk", setExtras(0, 0), []byte("v"), 0),
		binFrame(binOpGetK, "kk", nil, nil, 0),
	)
	if string(resps[1].key) != "kk" {
		t.Errorf("GETK key = %q", resps[1].key)
	}
}

func TestBinaryAddReplaceSemantics(t *testing.T) {
	resps := binExchange(t,
		binFrame(binOpReplace, "r", setExtras(0, 0), []byte("x"), 0), // NotStored
		binFrame(binOpAdd, "r", setExtras(0, 0), []byte("x"), 0),     // OK
		binFrame(binOpAdd, "r", setExtras(0, 0), []byte("y"), 0),     // NotStored
	)
	want := []uint16{binStatusNotStored, binStatusOK, binStatusNotStored}
	for i, w := range want {
		if resps[i].h.status != w {
			t.Errorf("resp %d status = %d, want %d", i, resps[i].h.status, w)
		}
	}
}

func TestBinaryCASConflict(t *testing.T) {
	store := newTestStore(16)
	first := binExchangeOn(t, store, binFrame(binOpSet, "c", setExtras(0, 0), []byte("v1"), 0))
	goodCAS := first[0].h.cas
	resps := binExchangeOn(t, store,
		binFrame(binOpSet, "c", setExtras(0, 0), []byte("v2"), goodCAS),
		binFrame(binOpSet, "c", setExtras(0, 0), []byte("v3"), goodCAS), // stale now
	)
	if resps[0].h.status != binStatusOK {
		t.Errorf("cas with current token = %d", resps[0].h.status)
	}
	if resps[1].h.status != binStatusKeyExists {
		t.Errorf("stale cas = %d, want KeyExists", resps[1].h.status)
	}
}

func TestBinaryDelete(t *testing.T) {
	resps := binExchange(t,
		binFrame(binOpSet, "d", setExtras(0, 0), []byte("v"), 0),
		binFrame(binOpDelete, "d", nil, nil, 0),
		binFrame(binOpDelete, "d", nil, nil, 0),
	)
	if resps[1].h.status != binStatusOK || resps[2].h.status != binStatusKeyNotFound {
		t.Errorf("delete statuses = %d, %d", resps[1].h.status, resps[2].h.status)
	}
}

func incrExtras(delta, initial uint64, expiry uint32) []byte {
	e := make([]byte, 20)
	binary.BigEndian.PutUint64(e[0:], delta)
	binary.BigEndian.PutUint64(e[8:], initial)
	binary.BigEndian.PutUint32(e[16:], expiry)
	return e
}

func TestBinaryIncrSeedsAndCounts(t *testing.T) {
	store := newTestStore(16)
	resps := binExchangeOn(t, store,
		binFrame(binOpIncr, "n", incrExtras(5, 100, 0), nil, 0), // seeds to 100
		binFrame(binOpIncr, "n", incrExtras(5, 0, 0), nil, 0),   // 105
		binFrame(binOpDecr, "n", incrExtras(6, 0, 0), nil, 0),   // 99
	)
	want := []uint64{100, 105, 99}
	for i, w := range want {
		if got := binary.BigEndian.Uint64(resps[i].value); got != w {
			t.Errorf("counter step %d = %d, want %d", i, got, w)
		}
	}
}

func TestBinaryIncrMissWithNoSeed(t *testing.T) {
	resps := binExchange(t, binFrame(binOpIncr, "n", incrExtras(1, 0, 0xffffffff), nil, 0))
	if resps[0].h.status != binStatusKeyNotFound {
		t.Errorf("status = %d, want KeyNotFound (expiry -1 means do not seed)", resps[0].h.status)
	}
}

func TestBinaryAppendPrepend(t *testing.T) {
	store := newTestStore(16)
	binExchangeOn(t, store,
		binFrame(binOpSet, "ap", setExtras(0, 0), []byte("mid"), 0),
		binFrame(binOpAppend, "ap", nil, []byte("-end"), 0),
		binFrame(binOpPrepend, "ap", nil, []byte("start-"), 0),
	)
	it, err := store.Get("ap")
	if err != nil || string(it.Value.Bytes()) != "start-mid-end" {
		t.Errorf("value = %q, %v", it.Value.Bytes(), err)
	}
}

func TestBinaryVersionNoopFlush(t *testing.T) {
	store := newTestStore(16)
	resps := binExchangeOn(t, store,
		binFrame(binOpSet, "f", setExtras(0, 0), []byte("v"), 0),
		binFrame(binOpVersion, "", nil, nil, 0),
		binFrame(binOpFlush, "", nil, nil, 0),
		binFrame(binOpNoop, "", nil, nil, 0),
	)
	if len(resps[1].value) == 0 {
		t.Error("version response empty")
	}
	if store.Len() != 0 {
		t.Error("flush did not clear the store")
	}
	_ = resps
}

func TestBinaryStatStreams(t *testing.T) {
	resps := binExchange(t,
		binFrame(binOpSet, "s", setExtras(0, 0), []byte("v"), 0),
		binFrame(binOpStat, "", nil, nil, 0),
	)
	// Stat emits N key/value frames plus an empty terminator.
	var sawItems, sawTerminator bool
	for _, r := range resps[1:] {
		if len(r.key) == 0 && len(r.value) == 0 {
			sawTerminator = true
		}
		if string(r.key) == "curr_items" && string(r.value) == "1" {
			sawItems = true
		}
	}
	if !sawItems || !sawTerminator {
		t.Errorf("stat stream incomplete (items=%v terminator=%v)", sawItems, sawTerminator)
	}
}

func TestBinaryUnknownOpcode(t *testing.T) {
	resps := binExchange(t, binFrame(0x7f, "", nil, nil, 0))
	if resps[0].h.status != binStatusUnknownCmd {
		t.Errorf("status = %d, want UnknownCmd", resps[0].h.status)
	}
}

func TestAutoDetectServesBothProtocolsOverTCP(t *testing.T) {
	_, addr := startServer(t)

	// Text connection.
	tc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()
	tc.Write([]byte("set auto 0 0 2\r\nok\r\n"))
	buf := make([]byte, 64)
	n, _ := tc.Read(buf)
	if string(buf[:n]) != "STORED\r\n" {
		t.Fatalf("text path answered %q", buf[:n])
	}

	// Binary connection to the same port.
	bc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	bc.Write(binFrame(binOpGet, "auto", nil, nil, 0))
	hdr := make([]byte, 24)
	if _, err := io.ReadFull(bc, hdr); err != nil {
		t.Fatal(err)
	}
	if hdr[0] != binRespMagic {
		t.Fatalf("binary path magic = 0x%02x", hdr[0])
	}
	bodyLen := binary.BigEndian.Uint32(hdr[8:])
	body := make([]byte, bodyLen)
	if _, err := io.ReadFull(bc, body); err != nil {
		t.Fatal(err)
	}
	if string(body[4:]) != "ok" { // 4 bytes of flags extras precede the value
		t.Errorf("binary get returned %q", body[4:])
	}
}

// newStringReaderFromBytes adapts raw bytes to the readWriter test helper.
func newStringReaderFromBytes(b []byte) *bytes.Reader { return bytes.NewReader(b) }
