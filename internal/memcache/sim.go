package memcache

import (
	"errors"
	"strconv"
	"time"

	"imca/internal/blob"
	"imca/internal/fabric"
	"imca/internal/flight"
	"imca/internal/optrace"
	"imca/internal/sim"
	"imca/internal/telemetry"
)

// ServiceName is the fabric service the simulated MCD registers.
const ServiceName = "mcd"

// Simulated per-operation service costs for a 2008-era memcached: command
// parsing + hash lookup + slab bookkeeping per key, plus a copy cost per
// byte moved in or out of the cache.
const (
	perKeyServiceTime = 6 * time.Microsecond
	// perByteCopyNanos models ~2 GB/s memory copies (0.5 ns/byte).
	perByteCopyNanos = 0.5
)

func copyTime(n int64) sim.Duration {
	return sim.Duration(float64(n) * perByteCopyNanos)
}

// Wire message types for the simulated memcached protocol. WireSize values
// approximate the text protocol's framing.

// GetReq requests one or more keys. A pooled request (op non-nil) belongs
// to a client-side getOp; the fabric recycles it when the call's frame
// retires, which is what returns the op to its pool.
type GetReq struct {
	Keys []string

	op *getOp
}

// Recycle implements fabric.Recyclable.
func (r *GetReq) Recycle() {
	if r.op != nil {
		r.op.release()
	}
}

// WireSize implements fabric.Msg.
func (r *GetReq) WireSize() int64 {
	n := int64(8)
	for _, k := range r.Keys {
		n += int64(len(k)) + 1
	}
	return n
}

// GetResp carries the found items. Down reports that the daemon is dead
// (connection refused); the caller treats every key as a miss. A pooled
// response (op non-nil) belongs to a server-side srvOp and its Items point
// into that op's buffers: valid through the task-engine continuation that
// receives it, reclaimed when the fabric recycles the response. Responses
// returned to blocking callers are never recycled and stay valid forever.
type GetResp struct {
	Items []*Item
	Down  bool

	op *srvOp
}

// Recycle implements fabric.Recyclable.
func (r *GetResp) Recycle() {
	if r.op != nil {
		r.op.release()
	}
}

// WireSize implements fabric.Msg.
func (r *GetResp) WireSize() int64 {
	n := int64(8)
	for _, it := range r.Items {
		n += int64(len(it.Key)) + it.Value.Len() + 40
	}
	return n
}

// SetReq stores one item (always an unconditional set, as IMCa uses).
// Pooled requests carry their client-side setOp, as GetReq does.
type SetReq struct {
	Item *Item

	op *setOp
}

// Recycle implements fabric.Recyclable.
func (r *SetReq) Recycle() {
	if r.op != nil {
		r.op.release()
	}
}

// WireSize implements fabric.Msg.
func (r *SetReq) WireSize() int64 {
	return int64(len(r.Item.Key)) + r.Item.Value.Len() + 40
}

// SetResp acknowledges a store. Pooled responses carry their srvOp, as
// GetResp does.
type SetResp struct {
	Err  string
	Down bool

	op *srvOp
}

// Recycle implements fabric.Recyclable.
func (r *SetResp) Recycle() {
	if r.op != nil {
		r.op.release()
	}
}

// WireSize implements fabric.Msg.
func (r *SetResp) WireSize() int64 { return 8 + int64(len(r.Err)) }

// DelReq deletes one key. Pooled requests carry their client-side delOp.
type DelReq struct {
	Key string

	op *delOp
}

// Recycle implements fabric.Recyclable.
func (r *DelReq) Recycle() {
	if r.op != nil {
		r.op.release()
	}
}

// WireSize implements fabric.Msg.
func (r *DelReq) WireSize() int64 { return 8 + int64(len(r.Key)) }

// DelResp acknowledges a delete. Pooled responses carry their srvOp.
type DelResp struct {
	Found bool
	Down  bool

	op *srvOp
}

// Recycle implements fabric.Recyclable.
func (r *DelResp) Recycle() {
	if r.op != nil {
		r.op.release()
	}
}

// WireSize implements fabric.Msg.
func (r *DelResp) WireSize() int64 { return 8 }

// SimServer is a memcached daemon attached to a fabric node inside the
// simulation. Like memcached 1.2 of the paper's era, the daemon itself is
// single-threaded: cache operations serialize on one event loop, while
// kernel TCP processing (the fabric's host overhead) uses the node's other
// cores.
type SimServer struct {
	node   *fabric.Node
	store  *Store
	daemon *sim.Resource
	down   bool
	// slow > 1 stretches every service-time charge by that factor: the
	// gray-failure mode where the daemon answers correctly but slowly
	// (swapping, a sick disk under the slab allocator, a hot neighbor).
	slow float64

	// ops is the free list of pooled request state machines (see
	// srvtask.go); replies handed to blocking callers escape and simply
	// leave the pool to the collector.
	ops []*srvOp
}

// NewSimServer starts an MCD on node with the given memory limit.
func NewSimServer(node *fabric.Node, limitBytes int64) *SimServer {
	env := node.Network().Env()
	s := &SimServer{
		node:   node,
		store:  NewStore(limitBytes, func() int64 { return int64(env.Now().Seconds()) }),
		daemon: sim.NewResource(env, 1),
	}
	node.HandleT(ServiceName, s.handleT)
	return s
}

// Node returns the fabric node the daemon runs on.
func (s *SimServer) Node() *fabric.Node { return s.node }

// Store exposes the cache engine for stats inspection.
func (s *SimServer) Store() *Store { return s.store }

// Fail kills the daemon: its contents are lost and requests are refused
// until Recover. The paper's §4.4 argues MCD failures never affect
// correctness because writes are persistent at the server first.
func (s *SimServer) Fail() {
	s.down = true
	s.store.FlushAll()
}

// Recover restarts the daemon (empty, as a restarted memcached would be).
func (s *SimServer) Recover() { s.down = false }

// Down reports whether the daemon is failed.
func (s *SimServer) Down() bool { return s.down }

// SetSlowdown makes the daemon gray: every service-time charge is
// stretched by f (> 1). The daemon still answers correctly — no errors,
// no Down replies — which is exactly why consecutive-failure ejection
// never catches it and latency suspicion exists. f <= 1 restores full
// speed.
func (s *SimServer) SetSlowdown(f float64) {
	if f <= 1 {
		s.slow = 0
		return
	}
	s.slow = f
}

// Slowdown returns the current gray stretch factor (1 when healthy).
func (s *SimServer) Slowdown() float64 {
	if s.slow > 1 {
		return s.slow
	}
	return 1
}

// stretch applies the gray slowdown to one service-time charge.
func (s *SimServer) stretch(d sim.Duration) sim.Duration {
	if s.slow > 1 {
		return sim.Duration(float64(d) * s.slow)
	}
	return d
}

// reqName names a request type for spans.
func reqName(req fabric.Msg) string {
	switch req.(type) {
	case *GetReq:
		return "get"
	case *SetReq:
		return "set"
	case *DelReq:
		return "delete"
	}
	return "?"
}

// The daemon's request handler is task-native; see srvtask.go.

// SimClient accesses a bank of simulated MCDs from one fabric node,
// distributing keys with a Selector (CRC32 by default, matching
// libmemcache).
type SimClient struct {
	node     *fabric.Node
	servers  []*SimServer
	selector Selector
	// bindings pre-resolve the mcd service on each server, so the per-call
	// path never repeats the lookup or the cross-network check.
	bindings []*fabric.Binding
	// Free lists of pooled task-engine operation frames (see simtask.go).
	getOps []*getOp
	setOps []*setOp
	delOps []*delOp
	// downReplies counts requests that came back with Down set (connection
	// refused by a failed daemon). Surfaced through BankStats.
	downReplies uint64
	// deadlineMisses counts requests abandoned because the calling
	// operation's virtual-time deadline expired — the paper's "fall back to
	// the server" path.
	deadlineMisses uint64
	// unreachables counts requests that failed because the link to the
	// server was cut (fabric.ErrUnreachable).
	unreachables uint64

	// Ejection state, active only after SetEjection (see health.go).
	ejectAfter                          int
	probeBackoff                        sim.Duration
	health                              []serverHealth
	ejects, probes, readmits, fastFails uint64

	// Replication: replicas >= 2 keeps a second copy of every key on the
	// selector's replica server (see SetReplication). 0 is the paper's
	// single-copy bank.
	replicas  int
	failovers uint64
	// Latency suspicion state, active only after SetSuspicion (see
	// health.go): gray (slow-but-alive) servers are soft-ejected when
	// their service-time EWMA crosses suspectAfter.
	suspectAfter            sim.Duration
	suspectBackoff          sim.Duration
	suspects, suspectClears uint64
	// fnGetFailover dispatches GetT's replica retry. It is a stored
	// function value on purpose: the allocfree walker follows direct
	// calls only, so the exceptional failover leg stays off the audited
	// common path (the same sanctioned idiom as the kernel's ev.fn).
	fnGetFailover func(t *sim.Task, next int, key string, k func(*Item, bool))

	// Per-bank latency distributions (get/set/getmulti entry to exit,
	// fast-fails included), registered by Register; nil no-ops otherwise.
	getHist, setHist, multiHist *telemetry.Hist
	// fr, when attached, records deadline expiries and ejection
	// transitions for post-mortems; nil (the default) is a no-op.
	fr *flight.Recorder
}

// NewSimClient returns a client on node addressing the given MCD bank.
func NewSimClient(node *fabric.Node, servers []*SimServer) *SimClient {
	if len(servers) == 0 {
		panic("memcache: empty MCD bank")
	}
	c := &SimClient{node: node, servers: servers, selector: CRC32Selector{}}
	c.bindings = make([]*fabric.Binding, len(servers))
	for i, s := range servers {
		c.bindings[i] = node.Bind(s.node, ServiceName)
	}
	c.fnGetFailover = c.failoverGetT
	return c
}

// SetSelector replaces the key distribution function.
func (c *SimClient) SetSelector(s Selector) { c.selector = s }

// SetReplication sets the number of copies kept per key. r >= 2 writes
// every Set/Delete through to the selector's replica server and lets Get
// fail over to that copy when the primary is ejected, suspected,
// unreachable, or answers Down. r <= 1 (the default) is the paper's
// single-copy bank. Only R=2 is modeled; larger r behaves as 2.
func (c *SimClient) SetReplication(r int) { c.replicas = r }

// replicaNext returns the replica server for key given its primary, or -1
// when replication is off, the bank has one node, or the selector mapped
// both copies to the same daemon.
func (c *SimClient) replicaNext(key string, primary int) int {
	if c.replicas < 2 || len(c.servers) < 2 {
		return -1
	}
	n := len(c.servers)
	r := (primary + 1) % n
	if rs, ok := c.selector.(ReplicaSelector); ok {
		r = rs.Replica(key, n)
	}
	if r == primary {
		return -1
	}
	return r
}

// SetFlight attaches a flight recorder: deadline expiries and ejection
// state transitions append fixed-size records to it. Appending costs no
// virtual time, so an attached recorder never changes results.
func (c *SimClient) SetFlight(rec *flight.Recorder) { c.fr = rec }

// Servers returns the MCD bank.
func (c *SimClient) Servers() []*SimServer { return c.servers }

func (c *SimClient) pick(key string) (int, *SimServer) {
	i := c.selector.Pick(key, len(c.servers))
	return i, c.servers[i]
}

// fail classifies a request error or Down reply into the right counter and
// feeds the health state machine.
func (c *SimClient) fail(a sim.Actor, idx int, err error, down bool) string {
	result := "deadline"
	switch {
	case down:
		c.downReplies++
		result = "down"
	case errors.Is(err, fabric.ErrUnreachable):
		c.unreachables++
		result = "unreachable"
	default:
		c.deadlineMisses++
		c.fr.Append(a.Now(), flight.KindDeadline, c.node.Name(), c.servers[idx].node.Name(), 0)
	}
	c.observe(a, idx, false)
	return result
}

// Get fetches one key; ok is false on a miss. A dead daemon, a cut link,
// or an expired operation deadline also reads as a miss — the bank
// degrades, it never stalls or fails an operation. An ejected server
// misses instantly without a wire request (see SetEjection). With
// replication on, a failed primary leg retries once against the replica.
func (c *SimClient) Get(p *sim.Proc, key string) (*Item, bool) {
	idx, _ := c.pick(key)
	return c.getOn(p, idx, c.replicaNext(key, idx), key)
}

// getOn runs one Get leg against server idx; next is the replica to fail
// over to (-1 for none). Failover triggers on an inadmissible (ejected or
// suspected) server, a wire error, or a Down reply — never on a clean
// miss, which is authoritative on either copy.
func (c *SimClient) getOn(p *sim.Proc, idx, next int, key string) (*Item, bool) {
	srv := c.servers[idx]
	sp := optrace.StartSpan(p, optrace.LayerMCD, "get")
	sp.SetAttr("server", srv.node.Name())
	t0 := p.Now()
	if !c.admitRead(p, idx) {
		sp.SetAttr("result", "ejected")
		sp.End(p)
		c.getHist.ObserveSince(p, t0)
		if next >= 0 {
			return c.getFailover(p, next, key)
		}
		return nil, false
	}
	m, err := c.node.Call(p, srv.node, ServiceName, &GetReq{Keys: []string{key}})
	if err != nil {
		sp.SetAttr("result", c.fail(p, idx, err, false))
		sp.End(p)
		c.getHist.ObserveSince(p, t0)
		if next >= 0 {
			return c.getFailover(p, next, key)
		}
		return nil, false
	}
	resp := m.(*GetResp)
	if resp.Down {
		sp.SetAttr("result", c.fail(p, idx, nil, true))
		sp.End(p)
		c.getHist.ObserveSince(p, t0)
		if next >= 0 {
			return c.getFailover(p, next, key)
		}
		return nil, false
	}
	c.observe(p, idx, true)
	c.observeLatency(p, idx, p.Now().Sub(t0))
	if len(resp.Items) == 0 {
		sp.SetAttr("result", "miss")
		sp.End(p)
		c.getHist.ObserveSince(p, t0)
		return nil, false
	}
	sp.SetAttr("result", "hit")
	sp.SetAttr("bytes", strconv.FormatInt(resp.Items[0].Value.Len(), 10))
	sp.End(p)
	c.getHist.ObserveSince(p, t0)
	return resp.Items[0], true
}

// getFailover records the replica retry and runs the second leg, which
// itself has no further failover target.
func (c *SimClient) getFailover(p *sim.Proc, next int, key string) (*Item, bool) {
	c.failovers++
	c.fr.Append(p.Now(), flight.KindFailover, c.node.Name(), c.servers[next].node.Name(), 0)
	return c.getOn(p, next, -1, key)
}

// mcdReply carries one MCD's scatter-gather outcome back to GetMulti.
type mcdReply struct {
	resp *GetResp
	err  error
}

// GetMulti fetches many keys with one batched request per MCD; requests to
// distinct MCDs proceed in parallel. The result maps found keys to items.
// Keys served by a dead daemon, over a cut link, or abandoned because the
// operation's deadline expired, are simply absent — misses the caller
// satisfies from the server. Keys on an ejected server are absent without
// a worker being spawned or a request serializing onto the NIC.
func (c *SimClient) GetMulti(p *sim.Proc, keys []string) map[string]*Item {
	if len(keys) == 1 {
		it, ok := c.Get(p, keys[0])
		if !ok {
			return map[string]*Item{}
		}
		return map[string]*Item{keys[0]: it}
	}
	defer c.multiHist.ObserveSince(p, p.Now())
	byServer := make(map[int][]string)
	for _, k := range keys {
		i := c.routeRead(p, k)
		byServer[i] = append(byServer[i], k)
	}
	out := make(map[string]*Item, len(keys))
	var events []*sim.Event
	var idxs []int
	for i := range c.servers { // deterministic order
		ks, ok := byServer[i]
		if !ok {
			continue
		}
		if !c.admitRead(p, i) {
			continue // ejected: every key an instant miss
		}
		i, s := i, c.servers[i]
		ev := sim.NewEvent(p.Env())
		worker := p.Spawn("mcd-get", func(q *sim.Proc) {
			sp := optrace.StartSpan(q, optrace.LayerMCD, "getmulti")
			sp.SetAttr("server", s.node.Name())
			sp.SetAttr("keys", strconv.Itoa(len(ks)))
			m, err := c.node.Call(q, s.node, ServiceName, &GetReq{Keys: ks})
			if err != nil {
				if errors.Is(err, fabric.ErrUnreachable) {
					sp.SetAttr("result", "unreachable")
				} else {
					sp.SetAttr("result", "deadline")
				}
				sp.End(q)
				ev.Trigger(mcdReply{err: err})
				return
			}
			resp := m.(*GetResp)
			switch {
			case resp.Down:
				sp.SetAttr("result", "down")
			case len(resp.Items) == len(ks):
				sp.SetAttr("result", "hit")
			default:
				sp.SetAttr("result", "partial")
			}
			sp.End(q)
			ev.Trigger(mcdReply{resp: resp})
		})
		// The workers run on the operation's critical path: their spans
		// nest under the caller's current span.
		optrace.Fork(p, worker)
		events = append(events, ev)
		idxs = append(idxs, i)
	}
	for n, ev := range events {
		r := ev.Wait(p).(mcdReply)
		if r.err != nil {
			c.fail(p, idxs[n], r.err, false)
			continue
		}
		if r.resp.Down {
			c.fail(p, idxs[n], nil, true)
			continue
		}
		c.observe(p, idxs[n], true)
		for _, it := range r.resp.Items {
			out[it.Key] = it
		}
	}
	return out
}

// routeRead picks the server a batched read for key should go to: the
// primary, unless it is currently unroutable (ejected or suspected, probe
// not yet due) and the replica is routable — then the key fails over at
// scatter time. Unlike admitRead this never counts probes or fast-fails;
// the per-server admission in the scatter loop does that once per batch.
func (c *SimClient) routeRead(a sim.Actor, key string) int {
	i, _ := c.pick(key)
	r := c.replicaNext(key, i)
	if r >= 0 && !c.readRoutable(a, i) && c.readRoutable(a, r) {
		c.failovers++
		c.fr.Append(a.Now(), flight.KindFailover, c.node.Name(), c.servers[r].node.Name(), 0)
		return r
	}
	return i
}

// Set stores an item on its MCD and waits for the acknowledgement. A dead
// daemon drops the update (the bank is best-effort; correctness lives at
// the file server), and so do an expired operation deadline, a cut link,
// and an ejected server. With replication on, the item is written through
// to the replica as well; the primary's result is what the caller sees
// (the replica copy is best-effort, like the bank itself).
func (c *SimClient) Set(p *sim.Proc, key string, value blob.Blob) error {
	idx, _ := c.pick(key)
	err := c.setOn(p, idx, key, value)
	if r := c.replicaNext(key, idx); r >= 0 {
		c.setOn(p, r, key, value)
	}
	return err
}

// setOn runs one Set leg against server idx.
func (c *SimClient) setOn(p *sim.Proc, idx int, key string, value blob.Blob) error {
	srv := c.servers[idx]
	sp := optrace.StartSpan(p, optrace.LayerMCD, "set")
	sp.SetAttr("server", srv.node.Name())
	sp.SetAttr("bytes", strconv.FormatInt(value.Len(), 10))
	defer sp.End(p)
	defer c.setHist.ObserveSince(p, p.Now())
	if !c.admit(p, idx) {
		sp.SetAttr("result", "ejected")
		return ErrServerDown
	}
	m, err := c.node.Call(p, srv.node, ServiceName, &SetReq{Item: &Item{Key: key, Value: value}})
	if err != nil {
		sp.SetAttr("result", c.fail(p, idx, err, false))
		return err
	}
	resp := m.(*SetResp)
	switch {
	case resp.Down:
		sp.SetAttr("result", c.fail(p, idx, nil, true))
		return ErrServerDown
	case resp.Err != "":
		c.observe(p, idx, true)
		sp.SetAttr("result", "error")
		return ErrNotStored
	}
	c.observe(p, idx, true)
	sp.SetAttr("result", "stored")
	return nil
}

// Delete removes a key from its MCD. An ejected server drops the delete
// without a wire request — sound for crash-ejections (the cache died with
// its contents), and the documented model boundary for partitions that
// separate a writer from a cache its readers can still reach (see
// DESIGN.md, "Fault model"). With replication on, both copies are
// deleted; found reports whether either copy held the key.
func (c *SimClient) Delete(p *sim.Proc, key string) bool {
	idx, _ := c.pick(key)
	found := c.delOn(p, idx, key)
	if r := c.replicaNext(key, idx); r >= 0 && c.delOn(p, r, key) {
		found = true
	}
	return found
}

// delOn runs one Delete leg against server idx.
func (c *SimClient) delOn(p *sim.Proc, idx int, key string) bool {
	srv := c.servers[idx]
	sp := optrace.StartSpan(p, optrace.LayerMCD, "delete")
	sp.SetAttr("server", srv.node.Name())
	defer sp.End(p)
	if !c.admit(p, idx) {
		sp.SetAttr("result", "ejected")
		return false
	}
	m, err := c.node.Call(p, srv.node, ServiceName, &DelReq{Key: key})
	if err != nil {
		sp.SetAttr("result", c.fail(p, idx, err, false))
		return false
	}
	resp := m.(*DelResp)
	if resp.Down {
		sp.SetAttr("result", c.fail(p, idx, nil, true))
		return false
	}
	c.observe(p, idx, true)
	return resp.Found
}

// DownReplies returns how many of this client's requests were answered by
// a dead daemon's connection reset.
func (c *SimClient) DownReplies() uint64 { return c.downReplies }

// DeadlineMisses returns how many of this client's requests were abandoned
// at an operation deadline and fell back to the server path.
func (c *SimClient) DeadlineMisses() uint64 { return c.deadlineMisses }

// BankStats sums Stats across the MCD bank.
func (c *SimClient) BankStats() Stats {
	var total Stats
	for _, s := range c.servers {
		st := s.store.Stats()
		total.CmdGet += st.CmdGet
		total.CmdSet += st.CmdSet
		total.GetHits += st.GetHits
		total.GetMisses += st.GetMisses
		total.Evictions += st.Evictions
		total.Expired += st.Expired
		total.CurrItems += st.CurrItems
		total.TotalItems += st.TotalItems
		total.Bytes += st.Bytes
		total.LimitBytes += st.LimitBytes
	}
	total.DownReplies = c.downReplies
	total.DeadlineMisses = c.deadlineMisses
	total.Unreachables = c.unreachables
	total.Ejects = c.ejects
	total.Probes = c.probes
	total.Readmits = c.readmits
	total.FastFails = c.fastFails
	total.Failovers = c.failovers
	total.Suspects = c.suspects
	total.SuspectClears = c.suspectClears
	return total
}
