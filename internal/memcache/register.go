package memcache

import "imca/internal/telemetry"

// Register exposes one daemon's memcached-style stats under prefix
// (e.g. "mcd0"). Values are read lazily from the store at sample time.
func (s *SimServer) Register(reg *telemetry.Registry, prefix string) {
	stat := func(pick func(Stats) uint64) func() uint64 {
		return func() uint64 { return pick(s.store.Stats()) }
	}
	reg.Counter(prefix+".gets", stat(func(st Stats) uint64 { return st.CmdGet }))
	reg.Counter(prefix+".hits", stat(func(st Stats) uint64 { return st.GetHits }))
	reg.Counter(prefix+".misses", stat(func(st Stats) uint64 { return st.GetMisses }))
	reg.Counter(prefix+".sets", stat(func(st Stats) uint64 { return st.CmdSet }))
	reg.Counter(prefix+".evictions", stat(func(st Stats) uint64 { return st.Evictions }))
	reg.Gauge(prefix+".items", func() float64 { return float64(s.store.Stats().CurrItems) })
	reg.Gauge(prefix+".stored_bytes", func() float64 { return float64(s.store.Stats().Bytes) })
	reg.Rate(prefix+".hit_rate",
		stat(func(st Stats) uint64 { return st.GetHits }),
		stat(func(st Stats) uint64 { return st.CmdGet }))
}

// Register exposes the client's failure counters under prefix — the ways
// a bank request degrades to the server path instead of answering — and
// the ejection state machine's transitions (zero unless SetEjection is
// enabled).
func (c *SimClient) Register(reg *telemetry.Registry, prefix string) {
	reg.Counter(prefix+".down_replies", func() uint64 { return c.downReplies })
	reg.Counter(prefix+".deadline_misses", func() uint64 { return c.deadlineMisses })
	reg.Counter(prefix+".unreachables", func() uint64 { return c.unreachables })
	reg.Counter(prefix+".ejects", func() uint64 { return c.ejects })
	reg.Counter(prefix+".probes", func() uint64 { return c.probes })
	reg.Counter(prefix+".readmits", func() uint64 { return c.readmits })
	reg.Counter(prefix+".fast_fails", func() uint64 { return c.fastFails })
	reg.Counter(prefix+".failovers", func() uint64 { return c.failovers })
	reg.Counter(prefix+".suspects", func() uint64 { return c.suspects })
	reg.Counter(prefix+".suspect_clears", func() uint64 { return c.suspectClears })
	// Per-bank latency distributions (entry to exit, fast-fails included).
	// Hists are excluded from scalar dumps, so these change no existing
	// output bytes.
	c.getHist = reg.Hist(prefix + ".get_lat")
	c.setHist = reg.Hist(prefix + ".set_lat")
	c.multiHist = reg.Hist(prefix + ".getmulti_lat")
}
