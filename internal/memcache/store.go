// Package memcache reimplements the memcached object cache: a slab
// allocator with per-class LRU eviction, lazy expiration, the text
// protocol, and a client library with pluggable key→server distribution
// (CRC32 hashing, as in libmemcache, or static modulo / round-robin).
//
// The same Store backs two deployments:
//
//   - a real TCP daemon (Server / cmd/memcached) speaking the memcached
//     text protocol over net.Conn, usable with any memcached client, and
//   - simulated MCD nodes (SimServer) attached to fabric nodes inside the
//     discrete-event simulation, used by the IMCa experiments.
//
// Values are blobs (see internal/blob), so simulated deployments can cache
// gigabytes of synthetic file data without allocating it, while the TCP
// daemon stores literal bytes.
package memcache

import (
	"errors"
	"sort"
	"sync"

	"imca/internal/blob"
)

// Memcached-compatible limits.
const (
	// MaxKeyLen is the longest permitted key (the paper quotes 256; real
	// memcached enforces 250 printable bytes, which we follow).
	MaxKeyLen = 250
	// MaxValueLen is the largest storable object (1 MB), which the paper
	// notes places a natural upper bound on the IMCa block size.
	MaxValueLen = 1 << 20
	// slabPageSize is the allocation unit handed to a slab class.
	slabPageSize = 1 << 20
	// itemOverhead approximates memcached's per-item header + pointers.
	itemOverhead = 48
	// minChunkSize is the smallest slab chunk.
	minChunkSize = 88
	// growthFactor is the chunk-size ratio between consecutive classes.
	growthFactor = 1.25
)

// Store errors.
var (
	ErrCacheMiss  = errors.New("memcache: cache miss")
	ErrNotStored  = errors.New("memcache: not stored")
	ErrExists     = errors.New("memcache: compare-and-swap conflict")
	ErrTooLarge   = errors.New("memcache: object too large")
	ErrBadKey     = errors.New("memcache: invalid key")
	ErrNotNumeric = errors.New("memcache: value is not a number")
	ErrServerDown = errors.New("memcache: server down")
)

// Item is a cache entry.
type Item struct {
	Key   string
	Value blob.Blob
	Flags uint32
	// Expiration is an absolute virtual/wall time in seconds, or 0 for
	// no expiry. Protocol layers convert relative TTLs before storing.
	Expiration int64
	CAS        uint64

	class      int
	lruPrev    *Item
	lruNext    *Item
	lastAccess int64
}

// Stats mirrors the counters reported by memcached's "stats" command that
// the paper's analysis relies on (hits, misses, evictions).
type Stats struct {
	CmdGet     uint64
	CmdSet     uint64
	GetHits    uint64
	GetMisses  uint64
	DeleteHits uint64
	DeleteMiss uint64
	Evictions  uint64
	Expired    uint64
	CurrItems  uint64
	TotalItems uint64
	Bytes      int64
	LimitBytes int64
	// DownReplies counts requests answered by a dead daemon's connection
	// reset. The store never increments it — it is a client-side
	// observation, summed into BankStats by SimClient.
	DownReplies uint64
	// DeadlineMisses counts requests abandoned at an operation deadline.
	// Also client-side only, summed into BankStats by SimClient.
	DeadlineMisses uint64
	// Unreachables counts requests dropped on a cut link, and Ejects,
	// Probes, Readmits, and FastFails trace the client-side ejection state
	// machine (see SimClient.SetEjection). All client-side only.
	Unreachables uint64
	Ejects       uint64
	Probes       uint64
	Readmits     uint64
	FastFails    uint64
	// Failovers counts reads retried against (or routed to) the replica
	// copy; Suspects and SuspectClears trace the latency-suspicion state
	// machine (see SimClient.SetSuspicion). All client-side only.
	Failovers     uint64
	Suspects      uint64
	SuspectClears uint64
}

// slabClass is one chunk-size class: items whose total size fits chunkSize
// are stored here, and eviction is LRU within the class.
type slabClass struct {
	chunkSize  int64
	freeChunks int64
	// Per-class LRU: head = most recently used.
	head, tail *Item
}

// Store is the cache engine. It is safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	limit   int64
	alloced int64 // slab pages handed out
	classes []slabClass
	table   map[string]*Item
	cas     uint64
	// Now returns the current time in seconds; the simulation supplies
	// virtual time, the TCP server supplies wall time.
	Now func() int64

	stats Stats
}

// NewStore returns a store bounded to limit bytes of slab memory (the -m
// option of memcached). now supplies the clock in seconds.
func NewStore(limit int64, now func() int64) *Store {
	if now == nil {
		panic("memcache: nil clock")
	}
	s := &Store{limit: limit, table: make(map[string]*Item), Now: now}
	s.stats.LimitBytes = limit
	for size := int64(minChunkSize); ; {
		s.classes = append(s.classes, slabClass{chunkSize: size})
		if size >= slabPageSize {
			break
		}
		next := int64(float64(size) * growthFactor)
		// Align up to 8 like memcached.
		next = (next + 7) &^ 7
		if next <= size {
			next = size + 8
		}
		if next > slabPageSize {
			next = slabPageSize
		}
		size = next
	}
	return s
}

// classFor returns the slab class index for an item of total size n, or -1
// if it does not fit the largest chunk.
func (s *Store) classFor(n int64) int {
	for i := range s.classes {
		if n <= s.classes[i].chunkSize {
			return i
		}
	}
	return -1
}

func itemSize(key string, value blob.Blob) int64 {
	return int64(len(key)) + value.Len() + itemOverhead
}

func validKey(key string) bool {
	if len(key) == 0 || len(key) > MaxKeyLen {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if c <= ' ' || c == 0x7f {
			return false
		}
	}
	return true
}

// lruUnlink removes it from its class's LRU list.
func (c *slabClass) lruUnlink(it *Item) {
	if it.lruPrev != nil {
		it.lruPrev.lruNext = it.lruNext
	} else {
		c.head = it.lruNext
	}
	if it.lruNext != nil {
		it.lruNext.lruPrev = it.lruPrev
	} else {
		c.tail = it.lruPrev
	}
	it.lruPrev, it.lruNext = nil, nil
}

// lruPush inserts it at the head (most recent).
func (c *slabClass) lruPush(it *Item) {
	it.lruPrev = nil
	it.lruNext = c.head
	if c.head != nil {
		c.head.lruPrev = it
	}
	c.head = it
	if c.tail == nil {
		c.tail = it
	}
}

// expired reports whether it has lazily expired at time now.
func (it *Item) expired(now int64) bool {
	return it.Expiration != 0 && it.Expiration <= now
}

// removeLocked deletes an item from the table and returns its chunk to the
// class free list.
func (s *Store) removeLocked(it *Item) {
	delete(s.table, it.Key)
	c := &s.classes[it.class]
	c.lruUnlink(it)
	c.freeChunks++
	s.stats.CurrItems--
	s.stats.Bytes -= itemSize(it.Key, it.Value)
}

// reserveChunkLocked obtains a chunk in class ci, growing the class by a
// slab page if the memory limit allows, else evicting LRU items of the
// same class (memcached's policy).
func (s *Store) reserveChunkLocked(ci int) error {
	c := &s.classes[ci]
	if c.freeChunks > 0 {
		c.freeChunks--
		return nil
	}
	if s.alloced+slabPageSize <= s.limit {
		s.alloced += slabPageSize
		c.freeChunks += slabPageSize / c.chunkSize // >=1: max chunk == page size
		c.freeChunks--
		return nil
	}
	// Evict from this class's LRU tail.
	for c.tail != nil {
		evict := c.tail
		if evict.expired(s.Now()) {
			s.stats.Expired++
		} else {
			s.stats.Evictions++
		}
		s.removeLocked(evict)
		if c.freeChunks > 0 {
			c.freeChunks--
			return nil
		}
	}
	return ErrTooLarge // class has no memory and nothing to evict
}

// Set unconditionally stores item.
func (s *Store) Set(item *Item) error { return s.store(item, "set") }

// Add stores item only if the key is absent.
func (s *Store) Add(item *Item) error { return s.store(item, "add") }

// Replace stores item only if the key is present.
func (s *Store) Replace(item *Item) error { return s.store(item, "replace") }

// CompareAndSwap stores item only if its CAS matches the stored item's.
func (s *Store) CompareAndSwap(item *Item) error { return s.store(item, "cas") }

// Append appends value bytes to an existing item.
func (s *Store) Append(key string, v blob.Blob) error { return s.concat(key, v, false) }

// Prepend prepends value bytes to an existing item.
func (s *Store) Prepend(key string, v blob.Blob) error { return s.concat(key, v, true) }

func (s *Store) store(item *Item, op string) error {
	if !validKey(item.Key) {
		return ErrBadKey
	}
	if item.Value.Len() > MaxValueLen {
		return ErrTooLarge
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.CmdSet++
	now := s.Now()

	old, exists := s.table[item.Key]
	if exists && old.expired(now) {
		s.stats.Expired++
		s.removeLocked(old)
		exists = false
	}
	switch op {
	case "add":
		if exists {
			return ErrNotStored
		}
	case "replace":
		if !exists {
			return ErrNotStored
		}
	case "cas":
		if !exists {
			return ErrCacheMiss
		}
		if old.CAS != item.CAS {
			return ErrExists
		}
	}
	return s.insertLocked(item, old, exists, now)
}

// insertLocked places item in the table, replacing old if exists.
func (s *Store) insertLocked(item *Item, old *Item, exists bool, now int64) error {
	size := itemSize(item.Key, item.Value)
	ci := s.classFor(size)
	if ci < 0 {
		return ErrTooLarge
	}
	if exists {
		s.removeLocked(old)
	}
	if err := s.reserveChunkLocked(ci); err != nil {
		return err
	}
	s.cas++
	stored := &Item{
		Key:        item.Key,
		Value:      item.Value,
		Flags:      item.Flags,
		Expiration: item.Expiration,
		CAS:        s.cas,
		class:      ci,
		lastAccess: now,
	}
	s.table[item.Key] = stored
	s.classes[ci].lruPush(stored)
	s.stats.CurrItems++
	s.stats.TotalItems++
	s.stats.Bytes += size
	item.CAS = s.cas
	return nil
}

func (s *Store) concat(key string, v blob.Blob, front bool) error {
	if !validKey(key) {
		return ErrBadKey
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.CmdSet++
	now := s.Now()
	old, ok := s.table[key]
	if !ok || old.expired(now) {
		if ok {
			s.stats.Expired++
			s.removeLocked(old)
		}
		return ErrNotStored
	}
	var nv blob.Blob
	if front {
		nv = blob.Concat(v, old.Value)
	} else {
		nv = blob.Concat(old.Value, v)
	}
	if nv.Len() > MaxValueLen {
		return ErrTooLarge
	}
	it := &Item{Key: key, Value: nv, Flags: old.Flags, Expiration: old.Expiration}
	return s.insertLocked(it, old, true, now)
}

// Get returns the item for key, or ErrCacheMiss.
func (s *Store) Get(key string) (*Item, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.getLocked(key)
}

func (s *Store) getLocked(key string) (*Item, error) {
	s.stats.CmdGet++
	it, ok := s.table[key]
	if !ok {
		s.stats.GetMisses++
		return nil, ErrCacheMiss
	}
	now := s.Now()
	if it.expired(now) {
		s.stats.Expired++
		s.stats.GetMisses++
		s.removeLocked(it)
		return nil, ErrCacheMiss
	}
	s.stats.GetHits++
	it.lastAccess = now
	c := &s.classes[it.class]
	c.lruUnlink(it)
	c.lruPush(it)
	return &Item{Key: it.Key, Value: it.Value, Flags: it.Flags, Expiration: it.Expiration, CAS: it.CAS}, nil
}

// GetView is Get returning the entry by value: same lookup, same stats,
// same LRU touch and lazy expiry, but the snapshot lands in the caller's
// Item instead of a freshly allocated copy — the simulated daemon's hot
// path reads through it into pooled response buffers. ok is false on a
// miss.
func (s *Store) GetView(key string) (Item, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.CmdGet++
	it, ok := s.table[key]
	if !ok {
		s.stats.GetMisses++
		return Item{}, false
	}
	now := s.Now()
	if it.expired(now) {
		s.stats.Expired++
		s.stats.GetMisses++
		s.removeLocked(it)
		return Item{}, false
	}
	s.stats.GetHits++
	it.lastAccess = now
	c := &s.classes[it.class]
	c.lruUnlink(it)
	c.lruPush(it)
	return Item{Key: it.Key, Value: it.Value, Flags: it.Flags, Expiration: it.Expiration, CAS: it.CAS}, true
}

// GetMulti returns the present items among keys, keyed by key.
func (s *Store) GetMulti(keys []string) map[string]*Item {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]*Item, len(keys))
	for _, k := range keys {
		if it, err := s.getLocked(k); err == nil {
			out[k] = it
		}
	}
	return out
}

// Delete removes key, returning ErrCacheMiss if absent.
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	it, ok := s.table[key]
	if !ok || it.expired(s.Now()) {
		if ok {
			s.stats.Expired++
			s.removeLocked(it)
		}
		s.stats.DeleteMiss++
		return ErrCacheMiss
	}
	s.removeLocked(it)
	s.stats.DeleteHits++
	return nil
}

// IncrDecr adjusts a numeric ASCII value by delta (decr floors at 0, as in
// memcached). It returns the new value.
func (s *Store) IncrDecr(key string, delta uint64, incr bool) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	it, ok := s.table[key]
	if !ok || it.expired(s.Now()) {
		if ok {
			s.stats.Expired++
			s.removeLocked(it)
		}
		return 0, ErrCacheMiss
	}
	cur, err := parseUint(it.Value.Bytes())
	if err != nil {
		return 0, ErrNotNumeric
	}
	var next uint64
	if incr {
		next = cur + delta
	} else if delta > cur {
		next = 0
	} else {
		next = cur - delta
	}
	nv := blob.FromBytes(formatUint(next))
	item := &Item{Key: key, Value: nv, Flags: it.Flags, Expiration: it.Expiration}
	if err := s.insertLocked(item, it, true, s.Now()); err != nil {
		return 0, err
	}
	return next, nil
}

// FlushAll invalidates every item immediately.
func (s *Store) FlushAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, it := range s.table {
		s.removeLocked(it)
	}
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ClassStat describes one slab class's occupancy.
type ClassStat struct {
	ChunkSize  int64
	UsedChunks int64
	FreeChunks int64
}

// SlabStats returns occupancy for every class that has ever held an item,
// mirroring memcached's "stats slabs" output.
func (s *Store) SlabStats() map[int]ClassStat {
	s.mu.Lock()
	defer s.mu.Unlock()
	used := make(map[int]int64)
	for _, it := range s.table {
		used[it.class]++
	}
	out := make(map[int]ClassStat)
	for ci := range s.classes {
		c := &s.classes[ci]
		if used[ci] == 0 && c.freeChunks == 0 {
			continue
		}
		out[ci] = ClassStat{
			ChunkSize:  c.chunkSize,
			UsedChunks: used[ci],
			FreeChunks: c.freeChunks,
		}
	}
	return out
}

// Len returns the current item count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.table)
}

// Keys returns every resident key in sorted order. It is an audit
// surface (the replica-coherence oracle enumerates both copies with it)
// and deliberately touches no stats, LRU state, or lazy expiry: auditing
// a store must not change what a later workload observes.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.table))
	for k := range s.table {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Peek returns key's stored value without any side effects: no stats, no
// LRU touch, no lazy expiry. Like Keys, it exists for audits; ok is
// false when the key is absent (an expired-but-resident item is still
// returned — the audit compares what a reader could be served).
func (s *Store) Peek(key string) (blob.Blob, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	it, ok := s.table[key]
	if !ok {
		return blob.Blob{}, false
	}
	return it.Value, true
}

func parseUint(b []byte) (uint64, error) {
	if len(b) == 0 {
		return 0, ErrNotNumeric
	}
	var v uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, ErrNotNumeric
		}
		v = v*10 + uint64(c-'0')
	}
	return v, nil
}

func formatUint(v uint64) []byte {
	if v == 0 {
		return []byte{'0'}
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return buf[i:]
}
