package memcache_test

import (
	"fmt"

	"imca/internal/blob"
	"imca/internal/memcache"
)

// The cache engine behind both the simulated MCDs and the TCP daemon:
// memcached semantics without any networking.
func ExampleStore() {
	clock := int64(0)
	store := memcache.NewStore(4<<20, func() int64 { return clock })

	store.Set(&memcache.Item{Key: "greeting", Value: blob.FromString("hello"), Flags: 7})
	it, _ := store.Get("greeting")
	fmt.Printf("%s (flags=%d)\n", it.Value.Bytes(), it.Flags)

	// Lazy expiration follows the injected clock.
	store.Set(&memcache.Item{Key: "ephemeral", Value: blob.FromString("x"), Expiration: 10})
	clock = 11
	if _, err := store.Get("ephemeral"); err == memcache.ErrCacheMiss {
		fmt.Println("expired")
	}
	// Output:
	// hello (flags=7)
	// expired
}

// Selectors decide which daemon in the bank owns a key; the block-modulo
// selector spreads consecutive file blocks round-robin (the paper's Fig 9
// configuration).
func ExampleBlockModuloSelector() {
	sel := memcache.BlockModuloSelector{BlockSize: 2048}
	for block := int64(0); block < 4; block++ {
		key := fmt.Sprintf("/data/file:%d", block*2048)
		fmt.Printf("block %d -> mcd%d\n", block, sel.Pick(key, 4))
	}
	// Output:
	// block 0 -> mcd0
	// block 1 -> mcd1
	// block 2 -> mcd2
	// block 3 -> mcd3
}
