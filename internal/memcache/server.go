package memcache

import (
	"net"
	"sync"
	"time"
)

// Server is a memcached-compatible TCP daemon speaking the text protocol.
type Server struct {
	store *Store
	ln    net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer returns a daemon bounded to limit bytes using wall-clock time
// for expirations.
func NewServer(limit int64) *Server {
	return &Server{
		//imcalint:allow wallclock real TCP daemon: expirations follow the host clock by design
		store: NewStore(limit, func() int64 { return time.Now().Unix() }),
		conns: make(map[net.Conn]struct{}),
	}
}

// Store exposes the underlying cache engine (for stats and tests).
func (s *Server) Store() *Store { return s.store }

// Listen binds addr (e.g. "127.0.0.1:11211") and begins accepting
// connections in the background. It returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr(), nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			_ = ServeAutoConn(s.store, conn)
		}()
	}
}

// Close stops accepting, drops live connections, and waits for handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.wg.Wait()
	return err
}
