package memcache

import (
	"imca/internal/fabric"
	"imca/internal/optrace"
	"imca/internal/sim"
)

// srvOp is the daemon's request state machine, pooled per SimServer. One op
// carries one request from daemon admission through CPU charges to the
// response, on continuations prebound at construction, so a steady-state
// request allocates nothing. The response messages live inside the op and
// carry a backpointer; when the fabric recycles a delivered (or abandoned)
// response, the op returns to its server's free list. Responses that escape
// to blocking callers are never recycled and their ops fall to the
// collector — correct, just not pooled.
type srvOp struct {
	s       *SimServer
	t       *sim.Task
	req     fabric.Msg
	respond func(fabric.Msg)
	sp      *optrace.Span
	svcTime sim.Duration
	moved   int64

	getResp GetResp
	setResp SetResp
	delResp DelResp
	// items holds hit snapshots by value; ptrs aliases into it for
	// GetResp.Items. Both keep their capacity across reuses.
	items []Item
	ptrs  []*Item

	fnDaemonHeld func()
	fnCPUHeld    func()
	fnCPUDone    func()
	fnCopyHeld   func()
	fnCopyDone   func()
}

func newSrvOp(s *SimServer) *srvOp {
	op := &srvOp{s: s}
	op.getResp.op = op
	op.setResp.op = op
	op.delResp.op = op
	op.fnDaemonHeld = op.daemonHeld
	op.fnCPUHeld = op.cpuHeld
	op.fnCPUDone = op.cpuDone
	op.fnCopyHeld = op.copyHeld
	op.fnCopyDone = op.copyDone
	return op
}

func (s *SimServer) getOp() *srvOp {
	if n := len(s.ops); n > 0 {
		op := s.ops[n-1]
		s.ops[n-1] = nil
		s.ops = s.ops[:n-1]
		return op
	}
	return newSrvOp(s)
}

// release returns the op to its server's pool; called by the pooled
// responses' Recycle when the fabric retires the call.
func (op *srvOp) release() {
	op.t, op.req, op.respond, op.sp = nil, nil, nil, nil
	op.getResp.Items = nil
	op.setResp.Err = ""
	op.getResp.Down, op.setResp.Down, op.delResp.Down = false, false, false
	for i := range op.ptrs {
		op.ptrs[i] = nil
	}
	for i := range op.items {
		op.items[i] = Item{}
	}
	op.s.ops = append(op.s.ops, op)
}

// handleT serves one request continuation-style. The charge sequence —
// daemon admission, per-key CPU, storage access, copy CPU — replays the
// retired process-backed handler leg for leg, so schedule consumption (and
// therefore results) are identical; only the per-request process spawn and
// per-response allocations are gone.
func (s *SimServer) handleT(t *sim.Task, from *fabric.Node, req fabric.Msg, respond func(fabric.Msg)) {
	sp := optrace.StartSpan(t, optrace.LayerMCDSrv, reqName(req))
	if s.down {
		sp.SetAttr("down", "true")
		sp.End(t)
		// Connection refused: the kernel answers with a reset after one
		// wire round trip; no daemon time is spent. Down replies are rare
		// (failure experiments), so they are not pooled.
		switch req.(type) {
		case *GetReq:
			respond(&GetResp{Down: true})
		case *SetReq:
			respond(&SetResp{Down: true})
		case *DelReq:
			respond(&DelResp{Down: true})
		default:
			panic("memcache: unknown request type")
		}
		return
	}
	op := s.getOp()
	op.t, op.req, op.respond, op.sp = t, req, respond, sp
	s.daemon.AcquireT(t, 1, op.fnDaemonHeld)
}

func (op *srvOp) daemonHeld() {
	switch r := op.req.(type) {
	case *GetReq:
		op.svcTime = op.s.stretch(sim.Duration(len(r.Keys)) * perKeyServiceTime)
	case *SetReq:
		op.svcTime = op.s.stretch(perKeyServiceTime + copyTime(r.Item.Value.Len()))
	case *DelReq:
		op.svcTime = op.s.stretch(perKeyServiceTime)
	default:
		panic("memcache: unknown request type")
	}
	op.s.node.CPU.AcquireT(op.t, 1, op.fnCPUHeld)
}

func (op *srvOp) cpuHeld() { op.t.Sleep(op.svcTime, op.fnCPUDone) }

func (op *srvOp) cpuDone() {
	s := op.s
	s.node.CPU.Release(1)
	if s.down {
		// The daemon crashed while this request was in service: the store
		// was flushed, so applying the mutation (or serving the stale
		// snapshot) would resurrect pre-crash state — the divergence the
		// replica-coherence audit exists to catch. Answer like a
		// connection reset instead; nothing is applied.
		switch op.req.(type) {
		case *GetReq:
			op.getResp.Down = true
			op.finish(&op.getResp)
		case *SetReq:
			op.setResp.Down = true
			op.finish(&op.setResp)
		case *DelReq:
			op.delResp.Down = true
			op.finish(&op.delResp)
		default:
			panic("memcache: unknown request type")
		}
		return
	}
	switch r := op.req.(type) {
	case *GetReq:
		items := op.items[:0]
		var moved int64
		for _, k := range r.Keys {
			if it, ok := s.store.GetView(k); ok {
				items = append(items, it)
				moved += it.Value.Len()
			}
		}
		op.items = items
		ptrs := op.ptrs[:0]
		for i := range items {
			ptrs = append(ptrs, &items[i])
		}
		op.ptrs = ptrs
		op.getResp.Items = ptrs
		op.moved = moved
		if moved > 0 {
			// Copy-out cost for the hit bytes: a second CPU use, exactly
			// as the blocking handler charged it.
			op.svcTime = s.stretch(copyTime(moved))
			s.node.CPU.AcquireT(op.t, 1, op.fnCopyHeld)
			return
		}
		op.finish(&op.getResp)
	case *SetReq:
		if err := s.store.Set(r.Item); err != nil {
			op.setResp.Err = err.Error()
		} else {
			op.setResp.Err = ""
		}
		op.finish(&op.setResp)
	case *DelReq:
		err := s.store.Delete(r.Key)
		op.delResp.Found = err == nil
		op.finish(&op.delResp)
	default:
		panic("memcache: unknown request type")
	}
}

func (op *srvOp) copyHeld() { op.t.Sleep(op.svcTime, op.fnCopyDone) }

func (op *srvOp) copyDone() {
	op.s.node.CPU.Release(1)
	op.finish(&op.getResp)
}

// finish releases the daemon, closes the span, and sends the response —
// the same order the blocking handler's defers unwound in.
func (op *srvOp) finish(resp fabric.Msg) {
	t, respond := op.t, op.respond
	op.s.daemon.Release(1)
	op.sp.End(t)
	respond(resp)
}
