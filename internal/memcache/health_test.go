package memcache

import (
	"fmt"
	"testing"
	"time"

	"imca/internal/blob"
	"imca/internal/fabric"
	"imca/internal/sim"
)

// keysFor returns distinct keys that the client's selector maps to each of
// the bank's servers: out[i] is a key served by server i.
func keysFor(cl *SimClient) []string {
	out := make([]string, len(cl.servers))
	found := 0
	for i := 0; found < len(out); i++ {
		k := fmt.Sprintf("key%d", i)
		s := cl.selector.Pick(k, len(cl.servers))
		if out[s] == "" {
			out[s] = k
			found++
		}
	}
	return out
}

// TestEjectionAfterKFailures: K consecutive Down replies eject the server;
// the next request fast-fails in zero virtual time without a wire message.
func TestEjectionAfterKFailures(t *testing.T) {
	env, cl := simBank(1, 64)
	cl.SetEjection(3, 2*time.Millisecond)
	cl.servers[0].Fail()
	env.Process("t", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			if _, ok := cl.Get(p, "k"); ok {
				t.Error("hit from a failed daemon")
			}
		}
		if !cl.Ejected(0) {
			t.Fatal("server not ejected after 3 down replies")
		}
		txBefore, start := cl.node.TxMsgs, p.Now()
		if _, ok := cl.Get(p, "k"); ok {
			t.Error("hit from an ejected server")
		}
		if cl.node.TxMsgs != txBefore {
			t.Error("fast-failed request serialized onto the NIC")
		}
		if p.Now() != start {
			t.Errorf("fast-failed request cost %v virtual time", p.Now().Sub(start))
		}
	})
	env.Run()
	if cl.Ejects() != 1 || cl.FastFails() != 1 || cl.DownReplies() != 3 {
		t.Errorf("ejects=%d fastFails=%d downReplies=%d, want 1, 1, 3",
			cl.Ejects(), cl.FastFails(), cl.DownReplies())
	}
}

// TestEjectionProbeReadmits: once the backoff expires, one probe goes to
// the wire; against a recovered daemon it succeeds and readmits the server
// immediately.
func TestEjectionProbeReadmits(t *testing.T) {
	env, cl := simBank(1, 64)
	cl.SetEjection(2, 2*time.Millisecond)
	cl.servers[0].Fail()
	env.Process("t", func(p *sim.Proc) {
		cl.Get(p, "k")
		cl.Get(p, "k")
		if !cl.Ejected(0) {
			t.Fatal("server not ejected")
		}
		cl.servers[0].Recover()
		p.Sleep(2 * time.Millisecond)
		if err := cl.Set(p, "k", blob.FromString("v")); err != nil {
			t.Errorf("probe set failed: %v", err)
		}
		if cl.Ejected(0) {
			t.Error("server still ejected after successful probe")
		}
		if it, ok := cl.Get(p, "k"); !ok || string(it.Value.Bytes()) != "v" {
			t.Errorf("get after readmit = %v, %v", it, ok)
		}
	})
	env.Run()
	if cl.Probes() != 1 || cl.Readmits() != 1 {
		t.Errorf("probes=%d readmits=%d, want 1, 1", cl.Probes(), cl.Readmits())
	}
}

// TestEjectionProbeBackoffDoubles: a failed probe doubles the wait before
// the next one.
func TestEjectionProbeBackoffDoubles(t *testing.T) {
	env, cl := simBank(1, 64)
	const backoff = 2 * time.Millisecond
	cl.SetEjection(1, backoff)
	cl.servers[0].Fail()
	env.Process("t", func(p *sim.Proc) {
		cl.Get(p, "k") // down reply: ejected, next probe in 2ms
		if !cl.Ejected(0) {
			t.Fatal("server not ejected")
		}
		p.Sleep(backoff)
		cl.Get(p, "k") // probe, fails: next probe in 4ms
		if cl.Probes() != 1 {
			t.Fatalf("probes = %d, want 1", cl.Probes())
		}
		p.Sleep(2 * time.Millisecond)
		cl.Get(p, "k") // only ~2ms into the 4ms backoff: fast-fail
		if cl.Probes() != 1 {
			t.Errorf("probe went out before the doubled backoff expired")
		}
		p.Sleep(2 * time.Millisecond)
		cl.Get(p, "k") // past the 4ms backoff: probe
		if cl.Probes() != 2 {
			t.Errorf("probes = %d after doubled backoff, want 2", cl.Probes())
		}
	})
	env.Run()
}

// TestGetMultiSkipsEjectedServers: a batched get spawns no worker and
// sends no request for keys on an ejected server; the healthy server still
// answers in the same batch.
func TestGetMultiSkipsEjectedServers(t *testing.T) {
	env, cl := simBank(2, 64)
	cl.SetEjection(1, 5*time.Millisecond)
	keys := keysFor(cl)
	env.Process("t", func(p *sim.Proc) {
		for i, k := range keys {
			if err := cl.Set(p, k, blob.FromString(fmt.Sprintf("v%d", i))); err != nil {
				t.Fatalf("set %q: %v", k, err)
			}
		}
		cl.servers[0].Fail()
		cl.Get(p, keys[0]) // down reply ejects server 0
		if !cl.Ejected(0) {
			t.Fatal("server 0 not ejected")
		}
		txBefore := cl.node.TxMsgs
		got := cl.GetMulti(p, keys)
		if cl.node.TxMsgs != txBefore+1 {
			t.Errorf("batched get sent %d messages, want 1 (healthy server only)",
				cl.node.TxMsgs-txBefore)
		}
		if _, ok := got[keys[0]]; ok {
			t.Error("batched get returned a key from an ejected server")
		}
		if it, ok := got[keys[1]]; !ok || string(it.Value.Bytes()) != "v1" {
			t.Errorf("healthy server's key = %v, %v", it, ok)
		}
	})
	env.Run()
	if cl.FastFails() != 1 {
		t.Errorf("fastFails = %d, want 1", cl.FastFails())
	}
}

// TestEjectionMidGetMulti: the daemon dies after the batch has scattered
// but before it replies. The gather leg must absorb the Down reply — the
// crashed server's keys are simply absent, the healthy server's keys still
// arrive, and the down reply itself trips ejection so the NEXT batch skips
// the server without spawning a worker.
func TestEjectionMidGetMulti(t *testing.T) {
	env, cl := simBank(2, 64)
	cl.SetEjection(1, 5*time.Millisecond)
	keys := keysFor(cl)
	env.Process("t", func(p *sim.Proc) {
		for i, k := range keys {
			if err := cl.Set(p, k, blob.FromString(fmt.Sprintf("v%d", i))); err != nil {
				t.Fatalf("set %q: %v", k, err)
			}
		}
		// The scatter serializes both requests now; the crash lands half a
		// wire latency later — in flight, before either daemon has replied.
		env.Defer(fabric.IPoIB.Latency/2, func() { cl.servers[0].Fail() })
		txBefore := cl.node.TxMsgs
		got := cl.GetMulti(p, keys)
		if cl.node.TxMsgs != txBefore+2 {
			t.Errorf("scatter sent %d messages, want 2 (crash must postdate the scatter)",
				cl.node.TxMsgs-txBefore)
		}
		if _, ok := got[keys[0]]; ok {
			t.Error("batched get returned a key from a daemon that died mid-batch")
		}
		if it, ok := got[keys[1]]; !ok || string(it.Value.Bytes()) != "v1" {
			t.Errorf("healthy server's key = %v, %v", it, ok)
		}
		if !cl.Ejected(0) {
			t.Error("mid-batch down reply did not eject the server")
		}
		txBefore = cl.node.TxMsgs
		got = cl.GetMulti(p, keys)
		if cl.node.TxMsgs != txBefore+1 {
			t.Errorf("post-ejection batch sent %d messages, want 1 (ejected server must be skipped)",
				cl.node.TxMsgs-txBefore)
		}
		if _, ok := got[keys[1]]; !ok {
			t.Error("healthy server's key missing from the post-ejection batch")
		}
	})
	env.Run()
	if cl.Ejects() != 1 || cl.DownReplies() != 1 {
		t.Errorf("ejects=%d downReplies=%d, want 1, 1", cl.Ejects(), cl.DownReplies())
	}
}

// TestEjectionProbeBackoffCaps: each failed probe doubles the wait, but
// the doubling stops at maxBackoffMult× the initial delay — a long outage
// still gets probed at a steady rate instead of a vanishing one.
func TestEjectionProbeBackoffCaps(t *testing.T) {
	env, cl := simBank(1, 64)
	const backoff = time.Millisecond
	cl.SetEjection(1, backoff)
	cl.servers[0].Fail()
	var probeAt []sim.Time
	env.Process("t", func(p *sim.Proc) {
		cl.Get(p, "k") // down reply: ejected, first probe due in 1ms
		if !cl.Ejected(0) {
			t.Fatal("server not ejected")
		}
		// Nine failed probes against a daemon that stays dead: the gap
		// doubles 1, 2, 4, ... then pins at the ×64 cap.
		for i := 0; i < 9; i++ {
			p.Sleep(cl.health[0].probeAt.Sub(p.Now()))
			probeAt = append(probeAt, p.Now())
			cl.Get(p, "k")
		}
	})
	env.Run()
	if cl.Probes() != 9 {
		t.Fatalf("probes = %d, want 9", cl.Probes())
	}
	cap := sim.Duration(maxBackoffMult) * backoff
	if got := cl.health[0].backoff; got != cap {
		t.Errorf("backoff after 9 failed probes = %v, want capped at %v", got, cap)
	}
	// Probe 7 onward is paced by the cap (2^6 = 64): each gap is the cap
	// plus the failed probe's own wire round trip, and — decisively — the
	// gaps stop doubling.
	for i := 7; i < len(probeAt); i++ {
		gap := probeAt[i].Sub(probeAt[i-1])
		if gap < cap || gap > cap+time.Millisecond {
			t.Errorf("gap before probe %d = %v, want ~%v", i+1, gap, cap)
		}
	}
	if g8, g9 := probeAt[8].Sub(probeAt[7]), probeAt[7].Sub(probeAt[6]); g8 != g9 {
		t.Errorf("capped gaps still changing: %v then %v", g9, g8)
	}
}

// TestEjectionDisabledByDefault: without SetEjection a down daemon is
// still asked every time — the paper's no-failover client — and the
// ejection counters stay untouched.
func TestEjectionDisabledByDefault(t *testing.T) {
	env, cl := simBank(1, 64)
	cl.servers[0].Fail()
	env.Process("t", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			start := p.Now()
			cl.Get(p, "k")
			if p.Now() == start {
				t.Error("down-daemon request cost no time with ejection disabled")
			}
		}
	})
	env.Run()
	if cl.DownReplies() != 5 {
		t.Errorf("downReplies = %d, want 5", cl.DownReplies())
	}
	if cl.Ejects() != 0 || cl.Probes() != 0 || cl.FastFails() != 0 {
		t.Errorf("ejection counters moved while disabled: ejects=%d probes=%d fastFails=%d",
			cl.Ejects(), cl.Probes(), cl.FastFails())
	}
}

// TestEjectionSuccessResetsFailStreak: failures only eject when
// consecutive — a success in between starts the count over.
func TestEjectionSuccessResetsFailStreak(t *testing.T) {
	env, cl := simBank(1, 64)
	cl.SetEjection(2, 2*time.Millisecond)
	env.Process("t", func(p *sim.Proc) {
		cl.Set(p, "k", blob.FromString("v"))
		cl.servers[0].Fail()
		cl.Get(p, "k") // fail 1
		cl.servers[0].Recover()
		cl.Get(p, "k") // success: streak resets (miss — the crash emptied the store)
		cl.servers[0].Fail()
		cl.Get(p, "k") // fail 1 again
		if cl.Ejected(0) {
			t.Error("server ejected despite interleaved success")
		}
		cl.Get(p, "k") // fail 2: now ejected
		if !cl.Ejected(0) {
			t.Error("server not ejected after two consecutive failures")
		}
	})
	env.Run()
}
