package memcache

import (
	"errors"
	"hash/crc32"
	"strconv"
	"strings"
)

// Selector maps a key to one of n cache servers.
//
// The paper's SMCache/CMCache use libmemcache's default CRC32 hash for
// locating blocks on MCDs, and replace it with a static modulo of the block
// number ("round-robin") for the IOzone throughput experiment (Fig. 9),
// where spreading consecutive blocks across all MCDs maximizes aggregate
// bandwidth.
type Selector interface {
	Pick(key string, n int) int
}

// CRC32Selector distributes keys by CRC32, following libmemcache's default
// hashing: the checksum is folded to 15 bits before the modulo.
type CRC32Selector struct{}

// ieeeTable drives the string-keyed checksum below.
var ieeeTable = crc32.MakeTable(crc32.IEEE)

// crc32String is crc32.ChecksumIEEE over a string, byte by byte, so the
// per-operation key hash needs no []byte conversion (which the compiler
// cannot always keep off the heap). The table-walk recurrence is the
// canonical CRC32 definition, so the checksum is identical.
func crc32String(s string) uint32 {
	h := ^uint32(0)
	for i := 0; i < len(s); i++ {
		h = ieeeTable[byte(h)^s[i]] ^ (h >> 8)
	}
	return ^h
}

// Pick implements Selector.
func (CRC32Selector) Pick(key string, n int) int {
	if n <= 1 {
		return 0
	}
	h := (crc32String(key) >> 16) & 0x7fff
	return int(h % uint32(n))
}

// BlockModuloSelector distributes block keys round-robin by block number.
// It expects IMCa data keys of the form "<path>:<byte offset>" and assigns
// server (offset/BlockSize) mod n. Keys without a numeric offset suffix
// (e.g. ":stat" keys) fall back to CRC32.
type BlockModuloSelector struct {
	BlockSize int64
}

// Pick implements Selector.
func (s BlockModuloSelector) Pick(key string, n int) int {
	if n <= 1 {
		return 0
	}
	i := strings.LastIndexByte(key, ':')
	if i >= 0 && s.BlockSize > 0 {
		off, err := strconv.ParseInt(key[i+1:], 10, 64)
		switch {
		case err == nil || errors.Is(err, strconv.ErrRange):
			// An overflowing offset still parses to the saturated boundary
			// value, so it maps like a huge offset instead of silently
			// rehashing the block to a CRC32-chosen server. A negative
			// offset (corrupt key) clamps to block zero rather than
			// producing a negative server index.
			if off < 0 {
				off = 0
			}
			return int((off / s.BlockSize) % int64(n))
		}
	}
	// Non-numeric suffixes (":stat" keys) hash like libmemcache would.
	return CRC32Selector{}.Pick(key, n)
}
