package memcache

import (
	"errors"
	"hash/crc32"
	"strconv"
	"strings"
)

// Selector maps a key to one of n cache servers.
//
// The paper's SMCache/CMCache use libmemcache's default CRC32 hash for
// locating blocks on MCDs, and replace it with a static modulo of the block
// number ("round-robin") for the IOzone throughput experiment (Fig. 9),
// where spreading consecutive blocks across all MCDs maximizes aggregate
// bandwidth.
type Selector interface {
	Pick(key string, n int) int
}

// ReplicaSelector extends a Selector with a replica placement: the server
// holding the second copy of a key under R=2 replication. Replica must
// return an index different from Pick whenever n >= 2, and Pick itself
// when n < 2 (a single-node bank cannot replicate).
type ReplicaSelector interface {
	Selector
	Replica(key string, n int) int
}

// ReplicaFor returns the replica index for key under sel, falling back to
// the hash-successor convention (primary+1 mod n) for selectors that do
// not implement ReplicaSelector. With n < 2 it returns the primary: there
// is nowhere else to put a copy.
func ReplicaFor(sel Selector, key string, n int) int {
	p := sel.Pick(key, n)
	if n < 2 {
		return p
	}
	if rs, ok := sel.(ReplicaSelector); ok {
		return rs.Replica(key, n)
	}
	return (p + 1) % n
}

// CRC32Selector distributes keys by CRC32, following libmemcache's default
// hashing: the checksum is folded to 15 bits before the modulo.
type CRC32Selector struct{}

// ieeeTable drives the string-keyed checksum below.
var ieeeTable = crc32.MakeTable(crc32.IEEE)

// crc32String is crc32.ChecksumIEEE over a string, byte by byte, so the
// per-operation key hash needs no []byte conversion (which the compiler
// cannot always keep off the heap). The table-walk recurrence is the
// canonical CRC32 definition, so the checksum is identical.
func crc32String(s string) uint32 {
	h := ^uint32(0)
	for i := 0; i < len(s); i++ {
		h = ieeeTable[byte(h)^s[i]] ^ (h >> 8)
	}
	return ^h
}

// Pick implements Selector.
func (CRC32Selector) Pick(key string, n int) int {
	if n <= 1 {
		return 0
	}
	h := (crc32String(key) >> 16) & 0x7fff
	return int(h % uint32(n))
}

// Replica implements ReplicaSelector: the successor server in index
// order, the natural "next bucket" for a modulo-style hash.
func (s CRC32Selector) Replica(key string, n int) int {
	if n < 2 {
		return 0
	}
	return (s.Pick(key, n) + 1) % n
}

// BlockModuloSelector distributes block keys round-robin by block number.
// It expects IMCa data keys of the form "<path>:<byte offset>" and assigns
// server (offset/BlockSize) mod n. Keys without a numeric offset suffix
// (e.g. ":stat" keys) fall back to CRC32.
type BlockModuloSelector struct {
	BlockSize int64
}

// Pick implements Selector.
func (s BlockModuloSelector) Pick(key string, n int) int {
	if n <= 1 {
		return 0
	}
	i := strings.LastIndexByte(key, ':')
	if i >= 0 && s.BlockSize > 0 {
		off, err := strconv.ParseInt(key[i+1:], 10, 64)
		switch {
		case err == nil || errors.Is(err, strconv.ErrRange):
			// An overflowing offset still parses to the saturated boundary
			// value, so it maps like a huge offset instead of silently
			// rehashing the block to a CRC32-chosen server. A negative
			// offset (corrupt key) clamps to block zero rather than
			// producing a negative server index.
			if off < 0 {
				off = 0
			}
			return int((off / s.BlockSize) % int64(n))
		}
	}
	// Non-numeric suffixes (":stat" keys) hash like libmemcache would.
	return CRC32Selector{}.Pick(key, n)
}

// Replica implements ReplicaSelector: the successor server in index
// order, which for block keys is also the next round-robin bucket.
func (s BlockModuloSelector) Replica(key string, n int) int {
	if n < 2 {
		return 0
	}
	return (s.Pick(key, n) + 1) % n
}
