package memcache

import (
	"fmt"
	"testing"
)

func TestCRC32SelectorInRangeAndDeterministic(t *testing.T) {
	s := CRC32Selector{}
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("/dir/file-%d:stat", i)
		got := s.Pick(k, 7)
		if got < 0 || got >= 7 {
			t.Fatalf("Pick(%q) = %d out of range", k, got)
		}
		if again := s.Pick(k, 7); again != got {
			t.Fatalf("Pick not deterministic for %q", k)
		}
	}
}

func TestCRC32SelectorSingleServer(t *testing.T) {
	if got := (CRC32Selector{}).Pick("anything", 1); got != 0 {
		t.Errorf("Pick with n=1 = %d", got)
	}
}

func TestCRC32SelectorSpread(t *testing.T) {
	s := CRC32Selector{}
	counts := make([]int, 4)
	for i := 0; i < 4000; i++ {
		counts[s.Pick(fmt.Sprintf("/data/f%d:0", i), 4)]++
	}
	for i, c := range counts {
		if c < 600 || c > 1400 {
			t.Errorf("server %d got %d of 4000 keys (poor spread)", i, c)
		}
	}
}

func TestBlockModuloSelectorRoundRobins(t *testing.T) {
	s := BlockModuloSelector{BlockSize: 2048}
	for blk := int64(0); blk < 16; blk++ {
		key := fmt.Sprintf("/bench/file1:%d", blk*2048)
		want := int(blk % 4)
		if got := s.Pick(key, 4); got != want {
			t.Errorf("block %d -> server %d, want %d", blk, got, want)
		}
	}
}

func TestBlockModuloSelectorConsecutiveBlocksDistinctServers(t *testing.T) {
	// The Fig. 9 rationale: a large sequential read touches all MCDs.
	s := BlockModuloSelector{BlockSize: 2048}
	seen := map[int]bool{}
	for blk := int64(0); blk < 4; blk++ {
		seen[s.Pick(fmt.Sprintf("/f:%d", blk*2048), 4)] = true
	}
	if len(seen) != 4 {
		t.Errorf("4 consecutive blocks used %d servers, want 4", len(seen))
	}
}

func TestBlockModuloSelectorFallbackForStatKeys(t *testing.T) {
	s := BlockModuloSelector{BlockSize: 2048}
	got := s.Pick("/some/file:stat", 4)
	want := CRC32Selector{}.Pick("/some/file:stat", 4)
	if got != want {
		t.Errorf("stat key pick = %d, want CRC32 fallback %d", got, want)
	}
}

func TestBlockModuloSelectorSingleServer(t *testing.T) {
	s := BlockModuloSelector{BlockSize: 2048}
	if got := s.Pick("/f:4096", 1); got != 0 {
		t.Errorf("Pick n=1 = %d", got)
	}
}

func TestBlockModuloSelectorNegativeOffsetClamps(t *testing.T) {
	// A corrupt key with a negative offset must not produce a negative
	// server index (which would panic downstream) or silently rehash.
	s := BlockModuloSelector{BlockSize: 2048}
	for _, key := range []string{"/f:-5", "/f:-65536", "/f:-9223372036854775808"} {
		if got := s.Pick(key, 4); got != 0 {
			t.Errorf("Pick(%q) = %d, want clamp to server 0", key, got)
		}
	}
}

func TestBlockModuloSelectorOverflowingOffsetSaturates(t *testing.T) {
	// An offset past int64 parses to the saturated boundary and maps like
	// a huge offset — previously it fell back to CRC32, so one block of a
	// fuzzed schedule would silently live on a different server.
	s := BlockModuloSelector{BlockSize: 2048}
	const overflow = "/f:92233720368547758080" // 10x MaxInt64
	want := int((int64(9223372036854775807) / 2048) % 4)
	if got := s.Pick(overflow, 4); got != want {
		t.Errorf("Pick(%q) = %d, want saturated mapping %d", overflow, got, want)
	}
	crc := CRC32Selector{}.Pick(overflow, 4)
	if got := s.Pick(overflow, 4); got == crc && want != crc {
		t.Errorf("overflowing offset fell back to CRC32")
	}
}
