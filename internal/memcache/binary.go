package memcache

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"imca/internal/blob"
	"imca/internal/bufpool"
)

// The memcached binary protocol: fixed 24-byte headers, binary-safe keys
// and values, quiet variants for pipelining. This implementation covers
// the core command set (get/set/add/replace/delete/incr/decr/append/
// prepend/version/noop/flush/quit/stat) and interoperates with standard
// binary-protocol clients.

const (
	binReqMagic  = 0x80
	binRespMagic = 0x81
)

// Binary opcodes.
const (
	binOpGet     = 0x00
	binOpSet     = 0x01
	binOpAdd     = 0x02
	binOpReplace = 0x03
	binOpDelete  = 0x04
	binOpIncr    = 0x05
	binOpDecr    = 0x06
	binOpQuit    = 0x07
	binOpFlush   = 0x08
	binOpGetQ    = 0x09
	binOpNoop    = 0x0a
	binOpVersion = 0x0b
	binOpGetK    = 0x0c
	binOpGetKQ   = 0x0d
	binOpAppend  = 0x0e
	binOpPrepend = 0x0f
	binOpStat    = 0x10
)

// Binary response status codes.
const (
	binStatusOK          = 0x0000
	binStatusKeyNotFound = 0x0001
	binStatusKeyExists   = 0x0002
	binStatusTooLarge    = 0x0003
	binStatusInvalidArgs = 0x0004
	binStatusNotStored   = 0x0005
	binStatusNonNumeric  = 0x0006
	binStatusUnknownCmd  = 0x0081
)

// binHeader is a decoded request/response header.
type binHeader struct {
	magic     byte
	opcode    byte
	keyLen    uint16
	extrasLen uint8
	status    uint16 // vbucket in requests
	bodyLen   uint32
	opaque    uint32
	cas       uint64
}

func readBinHeader(r io.Reader) (binHeader, error) {
	var buf [24]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return binHeader{}, err
	}
	return binHeader{
		magic:     buf[0],
		opcode:    buf[1],
		keyLen:    binary.BigEndian.Uint16(buf[2:]),
		extrasLen: buf[4],
		status:    binary.BigEndian.Uint16(buf[6:]),
		bodyLen:   binary.BigEndian.Uint32(buf[8:]),
		opaque:    binary.BigEndian.Uint32(buf[12:]),
		cas:       binary.BigEndian.Uint64(buf[16:]),
	}, nil
}

func writeBinResponse(w io.Writer, opcode byte, status uint16, opaque uint32, cas uint64, extras, key, value []byte) error {
	var buf [24]byte
	buf[0] = binRespMagic
	buf[1] = opcode
	binary.BigEndian.PutUint16(buf[2:], uint16(len(key)))
	buf[4] = uint8(len(extras))
	binary.BigEndian.PutUint16(buf[6:], status)
	binary.BigEndian.PutUint32(buf[8:], uint32(len(extras)+len(key)+len(value)))
	binary.BigEndian.PutUint32(buf[12:], opaque)
	binary.BigEndian.PutUint64(buf[16:], cas)
	if _, err := w.Write(buf[:]); err != nil {
		return err
	}
	for _, part := range [][]byte{extras, key, value} {
		if len(part) > 0 {
			if _, err := w.Write(part); err != nil {
				return err
			}
		}
	}
	return nil
}

func binStatusFor(err error) uint16 {
	switch err {
	case nil:
		return binStatusOK
	case ErrCacheMiss:
		return binStatusKeyNotFound
	case ErrExists:
		return binStatusKeyExists
	case ErrTooLarge:
		return binStatusTooLarge
	case ErrNotStored:
		return binStatusNotStored
	case ErrNotNumeric:
		return binStatusNonNumeric
	case ErrBadKey:
		return binStatusInvalidArgs
	default:
		return binStatusInvalidArgs
	}
}

// ServeBinaryConn runs the binary protocol on rw against store until the
// peer quits or the connection errors.
func ServeBinaryConn(store *Store, rw io.ReadWriter) error {
	r := bufio.NewReader(rw)
	w := bufio.NewWriter(rw)
	// Request bodies come from a connection-local free list: everything
	// that outlives the request (keys, stored values) is copied out below,
	// so a steady pipeline of same-sized commands reads into one recycled
	// buffer instead of allocating per message.
	var bufs bufpool.Pool
	for {
		quit, err := serveBinaryOne(store, r, w, &bufs)
		if err != nil {
			return err
		}
		if err := w.Flush(); err != nil {
			return err
		}
		if quit {
			return nil
		}
	}
}

func serveBinaryOne(store *Store, r *bufio.Reader, w *bufio.Writer, bufs *bufpool.Pool) (quit bool, err error) {
	h, err := readBinHeader(r)
	if err != nil {
		return false, err
	}
	if h.magic != binReqMagic {
		return false, fmt.Errorf("memcache: bad request magic 0x%02x", h.magic)
	}
	body := bufs.Get(int(h.bodyLen))
	defer bufs.Put(body)
	if _, err := io.ReadFull(r, body); err != nil {
		return false, err
	}
	if int(h.extrasLen)+int(h.keyLen) > len(body) {
		return false, fmt.Errorf("memcache: inconsistent binary lengths")
	}
	extras := body[:h.extrasLen]
	key := string(body[h.extrasLen : int(h.extrasLen)+int(h.keyLen)])
	value := body[int(h.extrasLen)+int(h.keyLen):]

	quiet := h.opcode == binOpGetQ || h.opcode == binOpGetKQ
	respond := func(status uint16, cas uint64, rextras, rkey, rvalue []byte) error {
		if quiet && status == binStatusKeyNotFound {
			return nil // quiet gets suppress misses
		}
		return writeBinResponse(w, h.opcode, status, h.opaque, cas, rextras, rkey, rvalue)
	}

	switch h.opcode {
	case binOpGet, binOpGetK, binOpGetQ, binOpGetKQ:
		it, gerr := store.Get(key)
		if gerr != nil {
			return false, respond(binStatusKeyNotFound, 0, nil, nil, nil)
		}
		fl := make([]byte, 4)
		binary.BigEndian.PutUint32(fl, it.Flags)
		var rkey []byte
		if h.opcode == binOpGetK || h.opcode == binOpGetKQ {
			rkey = []byte(key)
		}
		return false, respond(binStatusOK, it.CAS, fl, rkey, it.Value.Bytes())

	case binOpSet, binOpAdd, binOpReplace:
		if len(extras) != 8 {
			return false, respond(binStatusInvalidArgs, 0, nil, nil, nil)
		}
		item := &Item{
			Key:        key,
			Value:      blob.FromBytes(append([]byte(nil), value...)),
			Flags:      binary.BigEndian.Uint32(extras[0:]),
			Expiration: normalizeExp(int64(binary.BigEndian.Uint32(extras[4:])), store.Now()),
			CAS:        h.cas,
		}
		var serr error
		switch {
		case h.cas != 0:
			serr = store.CompareAndSwap(item)
		case h.opcode == binOpSet:
			serr = store.Set(item)
		case h.opcode == binOpAdd:
			serr = store.Add(item)
		default:
			serr = store.Replace(item)
		}
		return false, respond(binStatusFor(serr), item.CAS, nil, nil, nil)

	case binOpAppend, binOpPrepend:
		v := blob.FromBytes(append([]byte(nil), value...))
		var serr error
		if h.opcode == binOpAppend {
			serr = store.Append(key, v)
		} else {
			serr = store.Prepend(key, v)
		}
		return false, respond(binStatusFor(serr), 0, nil, nil, nil)

	case binOpDelete:
		derr := store.Delete(key)
		return false, respond(binStatusFor(derr), 0, nil, nil, nil)

	case binOpIncr, binOpDecr:
		if len(extras) != 20 {
			return false, respond(binStatusInvalidArgs, 0, nil, nil, nil)
		}
		delta := binary.BigEndian.Uint64(extras[0:])
		initial := binary.BigEndian.Uint64(extras[8:])
		expiry := binary.BigEndian.Uint32(extras[16:])
		v, ierr := store.IncrDecr(key, delta, h.opcode == binOpIncr)
		if ierr == ErrCacheMiss && expiry != 0xffffffff {
			// Binary protocol: a miss with expiry != -1 seeds the counter.
			item := &Item{Key: key, Value: blob.FromBytes(formatUint(initial)),
				Expiration: normalizeExp(int64(expiry), store.Now())}
			if serr := store.Set(item); serr != nil {
				return false, respond(binStatusFor(serr), 0, nil, nil, nil)
			}
			v, ierr = initial, nil
		}
		if ierr != nil {
			return false, respond(binStatusFor(ierr), 0, nil, nil, nil)
		}
		num := make([]byte, 8)
		binary.BigEndian.PutUint64(num, v)
		return false, respond(binStatusOK, 0, nil, nil, num)

	case binOpFlush:
		store.FlushAll()
		return false, respond(binStatusOK, 0, nil, nil, nil)

	case binOpNoop:
		return false, respond(binStatusOK, 0, nil, nil, nil)

	case binOpVersion:
		return false, respond(binStatusOK, 0, nil, nil, []byte("1.2.8-imca"))

	case binOpStat:
		st := store.Stats()
		stats := map[string]uint64{
			"cmd_get": st.CmdGet, "cmd_set": st.CmdSet,
			"get_hits": st.GetHits, "get_misses": st.GetMisses,
			"evictions": st.Evictions, "curr_items": st.CurrItems,
			"bytes": uint64(st.Bytes),
		}
		for k, v := range stats {
			if err := writeBinResponse(w, h.opcode, binStatusOK, h.opaque, 0,
				nil, []byte(k), []byte(fmt.Sprint(v))); err != nil {
				return false, err
			}
		}
		// Terminating empty stat response.
		return false, writeBinResponse(w, h.opcode, binStatusOK, h.opaque, 0, nil, nil, nil)

	case binOpQuit:
		_ = respond(binStatusOK, 0, nil, nil, nil)
		return true, nil

	default:
		return false, respond(binStatusUnknownCmd, 0, nil, nil, nil)
	}
}

// ServeAutoConn sniffs the first byte to select the binary (0x80 magic) or
// text protocol, as dual-protocol deployments expect.
func ServeAutoConn(store *Store, rw io.ReadWriter) error {
	br := bufio.NewReader(rw)
	first, err := br.Peek(1)
	if err != nil {
		return err
	}
	wrapped := struct {
		io.Reader
		io.Writer
	}{br, rw}
	if first[0] == binReqMagic {
		return ServeBinaryConn(store, wrapped)
	}
	return ServeConn(store, wrapped)
}
