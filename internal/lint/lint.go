// Package lint implements imcalint, a whole-program static analyzer for
// the simulator stack. The reproduction rests on two properties: two
// identical runs produce byte-identical tables and traces on a virtual
// clock, and the per-event hot paths stay allocation-free. Both are easy
// to break silently — a stray time.Now in a simulated layer, a map
// iterated into a report, a closure allocated inside the dispatch loop —
// so this package makes them machine-checked rather than conventional.
//
// Nine checks are implemented, each over the parsed and type-checked
// source of the packages under analysis (stdlib tooling only: go/parser,
// go/ast, go/types, go/importer):
//
//   - wallclock: no time.Now / time.Since / time.Sleep (or timer
//     construction) anywhere in the tree. Simulated code must use the
//     virtual clock; genuinely host-side code (the real memcached TCP
//     daemon, wall-time reporting in cmd/) carries an explicit
//     suppression.
//   - rand: no direct math/rand import outside internal/xrand; seeded
//     xrand generators keep workloads reproducible across runs and Go
//     versions.
//   - maprange: no `for range` over a map whose body emits output,
//     appends to a slice the function returns, registers instruments, or
//     drives simulated activity — unless the keys are collected and
//     sorted first.
//   - nogoroutine: no go statements, channel operations, or sync
//     primitives anywhere except an explicit host-side allowlist
//     (Config.HostSide); the kernel runs exactly one goroutine at a time
//     and concurrency belongs to sim.Chan/sim.Event. Host-side packages
//     (the parallel sweep engine, the real memcached daemon) are exempt
//     as whole packages rather than line by line, so a new go statement
//     in simulated code can never hide behind a stale suppression.
//   - tickpurity: functions reachable from a sim.Env.SetTick observer
//     must not call scheduling methods; sampling can never advance the
//     clock.
//   - allocfree: no heap-allocating constructs — closures, append
//     growth, make/new, address-taken composite literals, non-constant
//     string concatenation, interface boxing — reachable from a function
//     annotated //imcalint:hotpath. The annotation turns the runtime
//     AllocsPerRun guarantees of the dispatch loop, Hist.Observe and
//     flight.Append into compile-time ones; remaining allocations on the
//     task completion chains are held in lint.baseline as an explicit
//     burn-down list.
//   - taskparity: a type that declares continuation-engine (*sim.Task)
//     methods is task-ready, and every exported blocking operation
//     (first parameter *sim.Proc) on it must have a <Name>T sibling
//     whose call graph reaches the same set of kernel scheduling
//     primitives (Wait ≡ WaitT, Proc.Sleep ≡ Task.Sleep, …) — the
//     schedule-count parity that keeps the two engines byte-identical.
//   - instrcomplete: instrument names registered in one function are
//     unique (a duplicate panics at wiring time; this catches it at
//     compile time), a type with a full hot-path operation surface
//     registers telemetry instruments, every flight.Recorder.Append site
//     passes a declared flight.Kind constant, and every flight.Kind
//     constant is named by Kind.String.
//   - errdrop: no module-internal error result silently dropped in an
//     expression statement, and no completion-callback parameter a
//     function accepts but never calls or forwards — a dropped
//     continuation strands its task at the next deadlock diagnostic.
//
// Findings print as "file:line: [check] message". Intentional exceptions
// are annotated in the source as
//
//	//imcalint:allow <check> <reason>
//
// on the offending line or the line immediately above it. The reason is
// mandatory, and a suppression that matches no finding is itself reported,
// so the set of exceptions stays exact and self-documenting. Known
// findings that are tracked for burn-down rather than suppressed line by
// line live in a committed baseline file (see Config.BaselinePath and
// WriteBaseline); a baseline entry that no longer matches any finding is
// reported as stale so the file can only shrink by regeneration.
package lint

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Checks is the set of valid check names, in reporting order.
var Checks = []string{
	"wallclock", "rand", "maprange", "nogoroutine", "tickpurity",
	"allocfree", "taskparity", "instrcomplete", "errdrop",
}

// Finding is one rule violation.
type Finding struct {
	Pos   token.Position
	Check string
	Msg   string
}

// String formats the finding as "file:line: [check] message".
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Check, f.Msg)
}

// Config selects which packages each check treats specially. Paths are
// full import paths. The zero value is not useful; start from
// DefaultConfig.
type Config struct {
	// HostSide lists the packages exempt from the nogoroutine and errdrop
	// checks: code that legitimately uses host concurrency — worker pools
	// running whole simulations side by side, real network daemons — and
	// never executes inside a simulation. Every other package in the tree
	// is held to the single-threaded rule, so adding a package here is an
	// explicit, reviewable claim that nothing in it runs under the
	// kernel.
	HostSide []string
	// RandAllowed lists the packages that may import math/rand.
	RandAllowed []string
	// SimPath is the import path of the simulation kernel, used by the
	// maprange, tickpurity, allocfree and taskparity checks to recognize
	// scheduling calls and actor types. Empty disables those recognitions
	// (the checks still run on syntax).
	SimPath string
	// TelemetryPath is the import path of the telemetry package, used by
	// instrcomplete to recognize Registry registration calls.
	TelemetryPath string
	// FlightPath is the import path of the flight-recorder package, used
	// by instrcomplete to validate Append record kinds.
	FlightPath string

	// Enabled restricts the run to the named checks (nil or empty runs
	// all of them). Suppression validation is restricted to the enabled
	// set so filtering a check out never reports its suppressions as
	// stale.
	Enabled []string
	// BaselinePath, when non-empty, names the committed baseline file
	// (relative paths resolve against the module root). Findings matching
	// a baseline entry are dropped; entries matching no finding are
	// reported as stale so the baseline can only shrink by regeneration.
	// A missing file is simply an empty baseline.
	BaselinePath string
	// CacheDir, when non-empty, enables per-package result caching keyed
	// on the content hashes of the package's files and its module-internal
	// transitive dependencies. Cached packages skip parsing and
	// type-checking entirely.
	CacheDir string
}

// DefaultConfig returns the repository's own policy for the given module
// path.
func DefaultConfig(module string) *Config {
	sub := func(s string) string { return module + "/internal/" + s }
	return &Config{
		HostSide: []string{
			// The parallel sweep engine: runs isolated sim.Envs across a
			// worker pool, never inside one.
			sub("parallel"),
			// The real memcached protocol implementation and its daemon:
			// genuine TCP servers with genuine concurrency.
			sub("memcache"),
			module + "/cmd/memcached",
		},
		RandAllowed:   []string{sub("xrand")},
		SimPath:       sub("sim"),
		TelemetryPath: sub("telemetry"),
		FlightPath:    sub("flight"),
	}
}

func (c *Config) hostSide(path string) bool    { return contains(c.HostSide, path) }
func (c *Config) randAllowed(path string) bool { return contains(c.RandAllowed, path) }

// enabledSet resolves Enabled to a membership map over Checks, rejecting
// unknown names.
func (c *Config) enabledSet() (map[string]bool, error) {
	on := make(map[string]bool, len(Checks))
	if len(c.Enabled) == 0 {
		for _, name := range Checks {
			on[name] = true
		}
		return on, nil
	}
	for _, name := range c.Enabled {
		if !contains(Checks, name) {
			return nil, fmt.Errorf("lint: unknown check %q (valid: %s)", name, strings.Join(Checks, ", "))
		}
		on[name] = true
	}
	return on, nil
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// Run analyzes the packages matched by patterns (import-path-relative
// directory patterns such as "./...", "./internal/...", or a single
// directory) under the module rooted at root, and returns the surviving
// findings sorted by position. Suppressed and baselined findings are
// dropped; malformed or unused suppressions and stale baseline entries
// are reported as findings themselves.
func Run(root string, patterns []string, cfg *Config) ([]Finding, error) {
	enabled, err := cfg.enabledSet()
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(root, patterns)
	if err != nil {
		return nil, err
	}
	module, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}

	cache := openCache(root, cfg)
	hasher := newDepHasher(root, module)

	// The loader is built lazily: when every target package hits the
	// cache, nothing is parsed or type-checked at all.
	var ld *loader
	loaderFor := func() (*loader, error) {
		if ld == nil {
			ld, err = newLoader(root)
		}
		return ld, err
	}

	var findings []Finding
	var sups []*suppression
	for _, dir := range dirs {
		if ok, err := hasGoFiles(dir); err != nil {
			return nil, err
		} else if !ok {
			continue
		}
		path, err := importPathIn(root, module, dir)
		if err != nil {
			return nil, err
		}
		key := ""
		if cache != nil {
			key, err = hasher.key(dir, cfg, enabled)
			if err != nil {
				return nil, err
			}
			if ent, ok := cache.get(path, key); ok {
				findings = append(findings, ent.findings()...)
				sups = append(sups, ent.suppressions()...)
				continue
			}
		}
		l, err := loaderFor()
		if err != nil {
			return nil, err
		}
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue
		}
		pf, ps := checkPackage(l, pkg, cfg, enabled)
		relativize(root, pf, ps)
		if cache != nil {
			cache.put(path, key, pf, ps)
		}
		findings = append(findings, pf...)
		sups = append(sups, ps...)
	}
	if cache != nil {
		cache.save() // best-effort; a read-only tree just runs uncached
	}

	findings = applySuppressions(findings, sups, enabled)
	if cfg.BaselinePath != "" {
		base, err := readBaseline(resolvePath(root, cfg.BaselinePath))
		if err != nil {
			return nil, err
		}
		findings = applyBaseline(findings, base, cfg.BaselinePath)
	}
	sortFindings(findings)
	return dedupFindings(findings), nil
}

// checkPackage runs every enabled check over one package and collects its
// suppressions. Findings may be positioned in dependency packages (the
// reachability checks walk across package boundaries) but are attributed
// to the analysis of pkg, which is what the cache keys on.
func checkPackage(ld *loader, pkg *pkgInfo, cfg *Config, enabled map[string]bool) ([]Finding, []*suppression) {
	var findings []Finding
	if enabled["wallclock"] {
		findings = append(findings, checkWallclock(pkg)...)
	}
	if enabled["rand"] {
		findings = append(findings, checkRand(pkg, cfg)...)
	}
	if enabled["maprange"] {
		findings = append(findings, checkMapRange(pkg, cfg)...)
	}
	if enabled["nogoroutine"] {
		findings = append(findings, checkNoGoroutine(pkg, cfg)...)
	}
	if enabled["tickpurity"] {
		findings = append(findings, checkTickPurity(ld, pkg, cfg)...)
	}
	if enabled["allocfree"] {
		findings = append(findings, checkAllocFree(ld, pkg, cfg)...)
	}
	if enabled["taskparity"] {
		findings = append(findings, checkTaskParity(ld, pkg, cfg)...)
	}
	if enabled["instrcomplete"] {
		findings = append(findings, checkInstrComplete(pkg, cfg)...)
	}
	if enabled["errdrop"] {
		findings = append(findings, checkErrDrop(ld, pkg, cfg)...)
	}
	sups, bad := collectSuppressions(pkg)
	findings = append(findings, bad...)
	return findings, sups
}

// relativize rewrites finding and suppression positions relative to the
// module root so output — and the cache, and the baseline — is stable no
// matter where the analyzer was invoked from.
func relativize(root string, findings []Finding, sups []*suppression) {
	rel := func(name string) string {
		if r, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(r, "..") {
			return filepath.ToSlash(r)
		}
		return name
	}
	for i := range findings {
		findings[i].Pos.Filename = rel(findings[i].Pos.Filename)
	}
	for _, s := range sups {
		s.file = rel(s.file)
	}
}

func resolvePath(root, path string) string {
	if filepath.IsAbs(path) {
		return path
	}
	return filepath.Join(root, path)
}

func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Msg < b.Msg
	})
}

// dedupFindings drops findings identical in position and check: the
// cross-package reachability walks (allocfree, tickpurity) can reach the
// same construct from roots in different packages, and one report per
// site is enough. Input must be sorted, so which message survives is
// deterministic.
func dedupFindings(findings []Finding) []Finding {
	out := findings[:0]
	for i, f := range findings {
		if i > 0 {
			p := findings[i-1]
			if p.Pos.Filename == f.Pos.Filename && p.Pos.Line == f.Pos.Line &&
				p.Pos.Column == f.Pos.Column && p.Check == f.Check {
				continue
			}
		}
		out = append(out, f)
	}
	return out
}

// FindModuleRoot walks upward from dir to the directory containing go.mod
// and returns it.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// importPathIn maps a directory inside the module to its import path
// without needing a loader.
func importPathIn(root, module, dir string) (string, error) {
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return module, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module root %s", dir, root)
	}
	return module + "/" + filepath.ToSlash(rel), nil
}

// expandPatterns resolves "./..." style patterns to package directories
// relative to root. The "..." walk skips testdata, hidden, and VCS
// directories; naming a testdata directory explicitly still works (that is
// how the self-tests run the analyzer on its fixture packages).
func expandPatterns(root string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		switch {
		case pat == "..." || strings.HasSuffix(pat, "/..."):
			base := strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			start := filepath.Join(root, filepath.FromSlash(base))
			err := filepath.WalkDir(start, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != start && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if ok, err := hasGoFiles(path); err != nil {
					return err
				} else if ok {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		default:
			add(filepath.Join(root, filepath.FromSlash(pat)))
		}
	}
	return dirs, nil
}

func hasGoFiles(dir string) (bool, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true, nil
		}
	}
	return false, nil
}
