// Package lint implements imcalint, a determinism-invariant static
// analyzer for the simulator stack. The whole reproduction rests on one
// property: two identical runs produce byte-identical tables and traces on
// a virtual clock. That property is easy to break silently — a stray
// time.Now in a simulated layer, a map iterated into a report, a goroutine
// spawned inside the single-threaded event loop — so this package makes it
// machine-checked rather than conventional.
//
// Five checks are implemented, each over the parsed and type-checked
// source of the packages under analysis (stdlib tooling only: go/parser,
// go/ast, go/types, go/importer):
//
//   - wallclock: no time.Now / time.Since / time.Sleep (or timer
//     construction) anywhere in the tree. Simulated code must use the
//     virtual clock; genuinely host-side code (the real memcached TCP
//     daemon, wall-time reporting in cmd/) carries an explicit
//     suppression.
//   - rand: no direct math/rand import outside internal/xrand; seeded
//     xrand generators keep workloads reproducible across runs and Go
//     versions.
//   - maprange: no `for range` over a map whose body emits output,
//     appends to a slice the function returns, registers instruments, or
//     drives simulated activity — unless the keys are collected and
//     sorted first.
//   - nogoroutine: no go statements, channel operations, or sync
//     primitives anywhere except an explicit host-side allowlist
//     (Config.HostSide); the kernel runs exactly one goroutine at a time
//     and concurrency belongs to sim.Chan/sim.Event. Host-side packages
//     (the parallel sweep engine, the real memcached daemon) are exempt
//     as whole packages rather than line by line, so a new go statement
//     in simulated code can never hide behind a stale suppression.
//   - tickpurity: functions reachable from a sim.Env.SetTick observer
//     must not call scheduling methods; sampling can never advance the
//     clock.
//
// Findings print as "file:line: [check] message". Intentional exceptions
// are annotated in the source as
//
//	//imcalint:allow <check> <reason>
//
// on the offending line or the line immediately above it. The reason is
// mandatory, and a suppression that matches no finding is itself reported,
// so the set of exceptions stays exact and self-documenting.
package lint

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Checks is the set of valid check names, in reporting order.
var Checks = []string{"wallclock", "rand", "maprange", "nogoroutine", "tickpurity"}

// Finding is one rule violation.
type Finding struct {
	Pos   token.Position
	Check string
	Msg   string
}

// String formats the finding as "file:line: [check] message".
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Check, f.Msg)
}

// Config selects which packages each check treats specially. Paths are
// full import paths. The zero value is not useful; start from
// DefaultConfig.
type Config struct {
	// HostSide lists the packages exempt from the nogoroutine check:
	// code that legitimately uses host concurrency — worker pools running
	// whole simulations side by side, real network daemons — and never
	// executes inside a simulation. Every other package in the tree is
	// held to the single-threaded rule, so adding a package here is an
	// explicit, reviewable claim that nothing in it runs under the
	// kernel.
	HostSide []string
	// RandAllowed lists the packages that may import math/rand.
	RandAllowed []string
	// SimPath is the import path of the simulation kernel, used by the
	// maprange and tickpurity checks to recognize scheduling calls. Empty
	// disables those recognitions (the checks still run on syntax).
	SimPath string
}

// DefaultConfig returns the repository's own policy for the given module
// path.
func DefaultConfig(module string) *Config {
	sub := func(s string) string { return module + "/internal/" + s }
	return &Config{
		HostSide: []string{
			// The parallel sweep engine: runs isolated sim.Envs across a
			// worker pool, never inside one.
			sub("parallel"),
			// The real memcached protocol implementation and its daemon:
			// genuine TCP servers with genuine concurrency.
			sub("memcache"),
			module + "/cmd/memcached",
		},
		RandAllowed: []string{sub("xrand")},
		SimPath:     sub("sim"),
	}
}

func (c *Config) hostSide(path string) bool    { return contains(c.HostSide, path) }
func (c *Config) randAllowed(path string) bool { return contains(c.RandAllowed, path) }

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// Run analyzes the packages matched by patterns (import-path-relative
// directory patterns such as "./...", "./internal/...", or a single
// directory) under the module rooted at root, and returns the surviving
// findings sorted by position. Suppressed findings are dropped; malformed
// or unused suppressions are reported as findings themselves.
func Run(root string, patterns []string, cfg *Config) ([]Finding, error) {
	ld, err := newLoader(root)
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(root, patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*pkgInfo
	for _, dir := range dirs {
		pkg, err := ld.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}

	var findings []Finding
	var sups []*suppression
	for _, pkg := range pkgs {
		findings = append(findings, checkWallclock(pkg)...)
		findings = append(findings, checkRand(pkg, cfg)...)
		findings = append(findings, checkMapRange(pkg, cfg)...)
		findings = append(findings, checkNoGoroutine(pkg, cfg)...)
		s, bad := collectSuppressions(pkg)
		sups = append(sups, s...)
		findings = append(findings, bad...)
	}
	findings = append(findings, checkTickPurity(ld, pkgs, cfg)...)

	findings = applySuppressions(findings, sups)
	// Report paths relative to the module root so output is stable no
	// matter where the analyzer was invoked from.
	for i := range findings {
		if rel, err := filepath.Rel(root, findings[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			findings[i].Pos.Filename = filepath.ToSlash(rel)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return findings, nil
}

// FindModuleRoot walks upward from dir to the directory containing go.mod
// and returns it.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// expandPatterns resolves "./..." style patterns to package directories
// relative to root. The "..." walk skips testdata, hidden, and VCS
// directories; naming a testdata directory explicitly still works (that is
// how the self-tests run the analyzer on its fixture packages).
func expandPatterns(root string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		switch {
		case pat == "..." || strings.HasSuffix(pat, "/..."):
			base := strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			start := filepath.Join(root, filepath.FromSlash(base))
			err := filepath.WalkDir(start, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != start && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if ok, err := hasGoFiles(path); err != nil {
					return err
				} else if ok {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		default:
			add(filepath.Join(root, filepath.FromSlash(pat)))
		}
	}
	return dirs, nil
}

func hasGoFiles(dir string) (bool, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true, nil
		}
	}
	return false, nil
}
