package lint

import (
	"strconv"
)

// checkRand flags direct math/rand imports. Its global, version-dependent
// generators break run-to-run and Go-release-to-release reproducibility;
// workloads and models must draw from internal/xrand's explicitly seeded
// streams instead.
func checkRand(pkg *pkgInfo, cfg *Config) []Finding {
	if cfg.randAllowed(pkg.path) {
		return nil
	}
	var out []Finding
	for _, f := range pkg.files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				out = append(out, Finding{
					Pos:   pkg.pos(imp.Pos()),
					Check: "rand",
					Msg:   "import of " + path + " — use internal/xrand's seeded generators for reproducible randomness",
				})
			}
		}
	}
	return out
}
