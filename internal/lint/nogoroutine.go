package lint

import (
	"go/ast"
	"go/token"
	"strconv"
)

// checkNoGoroutine enforces single-threadedness everywhere except the
// host-side allowlist: the kernel runs exactly one process goroutine at a
// time, so go statements, native channels, and sync primitives in
// simulated code either deadlock, race, or — worst — silently reorder
// events between runs. Concurrency in simulated code is expressed with
// sim.Chan, sim.Event, and sim.Resource. The kernel's own goroutine
// handshake carries explicit suppressions; packages that are genuinely
// host-side (worker pools, real daemons) are exempted as whole packages
// via Config.HostSide.
func checkNoGoroutine(pkg *pkgInfo, cfg *Config) []Finding {
	if cfg.hostSide(pkg.path) {
		return nil
	}
	var out []Finding
	flag := func(pos token.Pos, msg string) {
		out = append(out, Finding{Pos: pkg.pos(pos), Check: "nogoroutine", Msg: msg})
	}
	for _, f := range pkg.files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "sync" || path == "sync/atomic" {
				flag(imp.Pos(), "import of "+path+" in a sim-side package — the kernel is single-threaded; locks hide ordering bugs")
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				flag(n.Pos(), "go statement in a sim-side package — spawn sim processes (Env.Process) instead")
			case *ast.SendStmt:
				flag(n.Pos(), "native channel send in a sim-side package — use sim.Chan for virtual-time messaging")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					flag(n.Pos(), "native channel receive in a sim-side package — use sim.Chan for virtual-time messaging")
				}
			case *ast.SelectStmt:
				flag(n.Pos(), "select statement in a sim-side package — use sim.Event/sim.Chan for virtual-time choice")
			case *ast.ChanType:
				flag(n.Pos(), "native channel type in a sim-side package — use sim.Chan for virtual-time messaging")
				return false // make(chan T) holds the ChanType; one finding is enough
			}
			return true
		})
	}
	return out
}
