package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// The errdrop check covers the sim-side failure plumbing. The simulator
// models faults deliberately (the injector, the failover client), so an
// error return from a module-internal call is a simulated outcome the
// caller must either handle or visibly discard — an expression statement
// that drops one silently turns an injected fault into a no-op and the
// experiment quietly measures the wrong system. The same goes for
// completion callbacks: a function that accepts a func-typed parameter
// and never invokes or forwards it strands whichever task armed it,
// surfacing only later as a deadlock diagnostic with no cause attached.
//
// Two rules:
//
//   - an expression statement whose call returns an error from a
//     module-internal function is a finding; assigning to _ is the
//     visible, greppable way to discard one on purpose. Standard-library
//     calls are exempt — fmt.Fprintf's error is conventionally ignored
//     and no simulated fault flows through it.
//   - a func-typed parameter that the body never references is a finding;
//     name it _ to declare the drop.
//
// Host-side packages (Config.HostSide) are exempt as whole packages: real
// TCP daemons legitimately drop write errors on teardown paths.
func checkErrDrop(ld *loader, pkg *pkgInfo, cfg *Config) []Finding {
	if cfg.hostSide(pkg.path) {
		return nil
	}
	var out []Finding
	out = append(out, errDropStmts(ld, pkg)...)
	out = append(out, errDropCallbacks(pkg)...)
	return out
}

// errDropStmts flags expression statements that discard an error result
// of a module-internal call.
func errDropStmts(ld *loader, pkg *pkgInfo) []Finding {
	errType := types.Universe.Lookup("error").Type()
	var out []Finding
	for _, f := range pkg.files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pkg.info, call)
			if callee == nil || callee.Pkg() == nil {
				return true // indirect or builtin: out of static reach
			}
			path := callee.Pkg().Path()
			if path != ld.module && !strings.HasPrefix(path, ld.module+"/") {
				return true
			}
			sig, ok := callee.Type().(*types.Signature)
			if !ok || sig.Results() == nil {
				return true
			}
			for i := 0; i < sig.Results().Len(); i++ {
				if types.Identical(sig.Results().At(i).Type(), errType) {
					out = append(out, Finding{
						Pos:   pkg.pos(stmt.Pos()),
						Check: "errdrop",
						Msg: "result of " + funcKey(callee) + " includes an error that is silently dropped — " +
							"handle it or assign it to _ to make the discard visible",
					})
					break
				}
			}
			return true
		})
	}
	return out
}

// errDropCallbacks flags func-typed parameters a function accepts but
// never references: a completion callback that is never invoked or
// forwarded strands the task that armed it.
func errDropCallbacks(pkg *pkgInfo) []Finding {
	var out []Finding
	for _, f := range pkg.files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Type.Params == nil {
				continue
			}
			for _, field := range fd.Type.Params.List {
				for _, name := range field.Names {
					if name.Name == "_" {
						continue
					}
					obj := pkg.info.Defs[name]
					if obj == nil {
						continue
					}
					if _, ok := obj.Type().Underlying().(*types.Signature); !ok {
						continue
					}
					if identUsed(pkg, fd.Body, obj) {
						continue
					}
					out = append(out, Finding{
						Pos:   pkg.pos(name.Pos()),
						Check: "errdrop",
						Msg: "callback parameter " + name.Name + " of " + fd.Name.Name +
							" is never invoked or forwarded — a stranded completion surfaces only as a deadlock; name it _ to declare the drop",
					})
				}
			}
		}
	}
	return out
}

// identUsed reports whether any identifier in body resolves to obj.
func identUsed(pkg *pkgInfo, body *ast.BlockStmt, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pkg.info.Uses[id] == obj {
			used = true
		}
		return true
	})
	return used
}
