package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func moduleRoot(t *testing.T) string {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := FindModuleRoot(cwd)
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestGolden runs the analyzer over each fixture package and compares the
// findings against its expected.txt, byte for byte. Each fixture
// exercises one check (plus one for the suppression machinery), so a
// behavior change in any check shows up as a golden diff.
func TestGolden(t *testing.T) {
	root := moduleRoot(t)
	for _, name := range []string{"wallclock", "randpkg", "maprange", "nogoroutine", "hostside", "tickpurity", "suppress"} {
		t.Run(name, func(t *testing.T) {
			rel := "internal/lint/testdata/" + name
			findings, err := Run(root, []string{"./" + rel}, DefaultConfig("imca"))
			if err != nil {
				t.Fatal(err)
			}
			if len(findings) == 0 {
				t.Fatal("fixture produced no findings; each violation package must fail")
			}
			var got strings.Builder
			for _, f := range findings {
				got.WriteString(strings.TrimPrefix(f.String(), rel+"/"))
				got.WriteString("\n")
			}
			wantBytes, err := os.ReadFile(filepath.Join(root, rel, "expected.txt"))
			if err != nil {
				t.Fatal(err)
			}
			if got.String() != string(wantBytes) {
				t.Errorf("findings differ from expected.txt\n--- got ---\n%s--- want ---\n%s", got.String(), wantBytes)
			}
		})
	}
}

// TestRepoClean is the acceptance invariant: the analyzer comes up clean
// on its own repository. Any new finding either needs a fix or an
// explicit //imcalint:allow annotation.
func TestRepoClean(t *testing.T) {
	root := moduleRoot(t)
	findings, err := Run(root, []string{"./..."}, DefaultConfig("imca"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestHostSideAllowlist verifies the nogoroutine package allowlist: the
// hostside fixture is all findings under the default policy (pinned by
// TestGolden) and exactly zero once its package is allowlisted — the
// whole-package exemption that lets host-side concurrency (the parallel
// sweep engine, the memcached daemon) pass without per-line suppressions.
func TestHostSideAllowlist(t *testing.T) {
	root := moduleRoot(t)
	cfg := DefaultConfig("imca")
	cfg.HostSide = append(cfg.HostSide, "imca/internal/lint/testdata/hostside")
	findings, err := Run(root, []string{"./internal/lint/testdata/hostside"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("allowlisted package still flagged: %s", f)
	}
}

// TestSuppressionCovers verifies both placements: trailing on the line and
// on the line immediately above.
func TestSuppressionCovers(t *testing.T) {
	findings := applySuppressions(
		[]Finding{
			{Pos: positionAt("a.go", 10), Check: "wallclock", Msg: "x"},
			{Pos: positionAt("a.go", 21), Check: "rand", Msg: "y"},
			{Pos: positionAt("a.go", 30), Check: "rand", Msg: "z"}, // wrong check below
		},
		[]*suppression{
			{file: "a.go", line: 10, check: "wallclock", reason: "same line"},
			{file: "a.go", line: 20, check: "rand", reason: "line above"},
			{file: "a.go", line: 30, check: "wallclock", reason: "mismatched"},
		},
	)
	var kept []string
	for _, f := range findings {
		kept = append(kept, f.Check+":"+f.Msg)
	}
	want := []string{
		"rand:z",
		"suppress:suppression for wallclock matches no finding — remove it or move it to the offending line",
	}
	if len(kept) != len(want) {
		t.Fatalf("kept %v, want %v", kept, want)
	}
	for i := range want {
		if kept[i] != want[i] {
			t.Errorf("kept[%d] = %q, want %q", i, kept[i], want[i])
		}
	}
}
