package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func moduleRoot(t *testing.T) string {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := FindModuleRoot(cwd)
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// goldenConfig tweaks the default config for fixtures that exercise a
// path-dependent rule (the flight-recorder package is pointed at the
// fixture itself so the Kind.String totality rule runs there).
var goldenConfig = map[string]func(*Config){
	"flightkind": func(cfg *Config) { cfg.FlightPath = "imca/internal/lint/testdata/flightkind" },
}

// TestGolden runs the analyzer over each fixture package and compares the
// findings against its expected.txt, byte for byte. Each fixture
// exercises one check (plus one for the suppression machinery), so a
// behavior change in any check shows up as a golden diff.
func TestGolden(t *testing.T) {
	root := moduleRoot(t)
	for _, name := range []string{
		"wallclock", "randpkg", "maprange", "nogoroutine", "hostside", "tickpurity",
		"allocfree", "taskparity", "instrcomplete", "flightkind", "errdrop", "suppress",
	} {
		t.Run(name, func(t *testing.T) {
			rel := "internal/lint/testdata/" + name
			cfg := DefaultConfig("imca")
			if tweak, ok := goldenConfig[name]; ok {
				tweak(cfg)
			}
			findings, err := Run(root, []string{"./" + rel}, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(findings) == 0 {
				t.Fatal("fixture produced no findings; each violation package must fail")
			}
			var got strings.Builder
			for _, f := range findings {
				got.WriteString(strings.TrimPrefix(f.String(), rel+"/"))
				got.WriteString("\n")
			}
			wantBytes, err := os.ReadFile(filepath.Join(root, rel, "expected.txt"))
			if err != nil {
				t.Fatal(err)
			}
			if got.String() != string(wantBytes) {
				t.Errorf("findings differ from expected.txt\n--- got ---\n%s--- want ---\n%s", got.String(), wantBytes)
			}
		})
	}
}

// TestRepoClean is the acceptance invariant: the analyzer comes up clean
// on its own repository under the committed baseline. Any new finding
// either needs a fix, an explicit //imcalint:allow annotation, or a
// deliberate, reviewed regeneration of lint.baseline; a baseline entry
// outliving its finding fails here too, as a stale report.
func TestRepoClean(t *testing.T) {
	root := moduleRoot(t)
	cfg := DefaultConfig("imca")
	cfg.BaselinePath = "lint.baseline"
	findings, err := Run(root, []string{"./..."}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestHostSideAllowlist verifies the nogoroutine package allowlist: the
// hostside fixture is all findings under the default policy (pinned by
// TestGolden) and exactly zero once its package is allowlisted — the
// whole-package exemption that lets host-side concurrency (the parallel
// sweep engine, the memcached daemon) pass without per-line suppressions.
func TestHostSideAllowlist(t *testing.T) {
	root := moduleRoot(t)
	cfg := DefaultConfig("imca")
	cfg.HostSide = append(cfg.HostSide, "imca/internal/lint/testdata/hostside")
	findings, err := Run(root, []string{"./internal/lint/testdata/hostside"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("allowlisted package still flagged: %s", f)
	}
}

// TestSuppressionCovers verifies both placements: trailing on the line and
// on the line immediately above.
func TestSuppressionCovers(t *testing.T) {
	findings := applySuppressions(
		[]Finding{
			{Pos: positionAt("a.go", 10), Check: "wallclock", Msg: "x"},
			{Pos: positionAt("a.go", 21), Check: "rand", Msg: "y"},
			{Pos: positionAt("a.go", 30), Check: "rand", Msg: "z"}, // wrong check below
		},
		[]*suppression{
			{file: "a.go", line: 10, check: "wallclock", reason: "same line"},
			{file: "a.go", line: 20, check: "rand", reason: "line above"},
			{file: "a.go", line: 30, check: "wallclock", reason: "mismatched"},
		},
		nil, // all checks enabled
	)
	var kept []string
	for _, f := range findings {
		kept = append(kept, f.Check+":"+f.Msg)
	}
	want := []string{
		"rand:z",
		"suppress:suppression for wallclock matches no finding — remove it or move it to the offending line",
	}
	if len(kept) != len(want) {
		t.Fatalf("kept %v, want %v", kept, want)
	}
	for i := range want {
		if kept[i] != want[i] {
			t.Errorf("kept[%d] = %q, want %q", i, kept[i], want[i])
		}
	}
}

// TestStackedSuppressions verifies that one line can carry two findings
// of different checks, suppressed independently: one annotation trailing
// on the line, the other on the line above. Both must be consumed, so
// neither is reported unused.
func TestStackedSuppressions(t *testing.T) {
	findings := applySuppressions(
		[]Finding{
			{Pos: positionAt("a.go", 10), Check: "wallclock", Msg: "x"},
			{Pos: positionAt("a.go", 10), Check: "nogoroutine", Msg: "y"},
		},
		[]*suppression{
			{file: "a.go", line: 9, check: "wallclock", reason: "line above"},
			{file: "a.go", line: 10, check: "nogoroutine", reason: "same line"},
		},
		nil,
	)
	for _, f := range findings {
		t.Errorf("stacked suppressions left a finding: %s [%s] %s", f.Pos.Filename, f.Check, f.Msg)
	}
}

// TestSuppressionEnabledFilter verifies that restricting the run to some
// checks never reports the other checks' suppressions as unused: a
// -check wallclock run must not complain about a perfectly good
// nogoroutine annotation it never evaluated.
func TestSuppressionEnabledFilter(t *testing.T) {
	sups := func() []*suppression {
		return []*suppression{{file: "a.go", line: 5, check: "nogoroutine", reason: "kernel handshake"}}
	}
	if got := applySuppressions(nil, sups(), map[string]bool{"wallclock": true}); len(got) != 0 {
		t.Errorf("disabled check's suppression reported unused: %v", got)
	}
	if got := applySuppressions(nil, sups(), map[string]bool{"nogoroutine": true}); len(got) != 1 || got[0].Check != "suppress" {
		t.Errorf("enabled check's unused suppression not reported: %v", got)
	}
}

// TestEnabledFilter verifies Config.Enabled end to end: the errdrop
// fixture is all findings under its own check and silent when only
// taskparity runs, and an unknown name is an error, not a silent no-op.
func TestEnabledFilter(t *testing.T) {
	root := moduleRoot(t)
	pat := []string{"./internal/lint/testdata/errdrop"}

	cfg := DefaultConfig("imca")
	cfg.Enabled = []string{"taskparity"}
	findings, err := Run(root, pat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("disabled errdrop still reported: %v", findings)
	}

	cfg = DefaultConfig("imca")
	cfg.Enabled = []string{"warpdrive"}
	if _, err := Run(root, pat, cfg); err == nil {
		t.Error("unknown check name accepted")
	}
}

// TestBaselineRoundTrip pins the burn-down workflow: WriteBaseline
// records a fixture's findings, and a run against that baseline is
// clean — with line-number drift tolerated, since matching is on
// (file, check, message) only.
func TestBaselineRoundTrip(t *testing.T) {
	root := moduleRoot(t)
	pat := []string{"./internal/lint/testdata/errdrop"}
	base := filepath.Join(t.TempDir(), "base.txt")

	n, err := WriteBaseline(root, pat, DefaultConfig("imca"), base)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("WriteBaseline recorded %d findings, want 2", n)
	}

	cfg := DefaultConfig("imca")
	cfg.BaselinePath = base
	findings, err := Run(root, pat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("baselined run not clean: %v", findings)
	}

	// Shift every recorded line number: still clean.
	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	shifted := strings.ReplaceAll(string(data), ".go:1", ".go:99")
	if shifted == string(data) {
		t.Fatal("test premise broken: no line numbers to shift")
	}
	if err := os.WriteFile(base, []byte(shifted), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err = Run(root, pat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("line-shifted baseline stopped matching: %v", findings)
	}
}

// TestBaselineStale verifies the shrink-only property: an entry matching
// no finding surfaces as a "baseline" finding pointing into the baseline
// file itself, and malformed entries are hard errors.
func TestBaselineStale(t *testing.T) {
	root := moduleRoot(t)
	pat := []string{"./internal/lint/testdata/errdrop"}
	base := filepath.Join(t.TempDir(), "base.txt")
	entry := "internal/lint/testdata/errdrop/errdrop.go:1: [errdrop] no such finding\n"
	if err := os.WriteFile(base, []byte("# header\n"+entry), 0o644); err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig("imca")
	cfg.BaselinePath = base
	findings, err := Run(root, pat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var stale int
	for _, f := range findings {
		if f.Check == "baseline" {
			stale++
			if f.Pos.Filename != base || f.Pos.Line != 2 {
				t.Errorf("stale report points at %s:%d, want %s:2", f.Pos.Filename, f.Pos.Line, base)
			}
		}
	}
	if stale != 1 {
		t.Errorf("got %d stale baseline findings, want 1 (all: %v)", stale, findings)
	}

	if err := os.WriteFile(base, []byte("not a finding line\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(root, pat, cfg); err == nil {
		t.Error("malformed baseline entry accepted")
	}
}

// TestBaselineSuppressionPrecedence pins the interaction of the two
// exception mechanisms: suppressions apply first, so a finding covered by
// both consumes its //imcalint:allow annotation and leaves the baseline
// entry stale. One finding cannot justify two exceptions.
func TestBaselineSuppressionPrecedence(t *testing.T) {
	root := moduleRoot(t)
	pat := []string{"./internal/lint/testdata/errdrop"}
	// The fixture's Allowed function suppresses exactly this finding.
	entry := "internal/lint/testdata/errdrop/errdrop.go:27: [errdrop] callback parameter k of Allowed is never invoked or forwarded — a stranded completion surfaces only as a deadlock; name it _ to declare the drop\n"
	base := filepath.Join(t.TempDir(), "base.txt")
	if err := os.WriteFile(base, []byte(entry), 0o644); err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig("imca")
	cfg.BaselinePath = base
	findings, err := Run(root, pat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var stale, errdrop int
	for _, f := range findings {
		switch f.Check {
		case "baseline":
			stale++
		case "errdrop":
			errdrop++
		}
	}
	if stale != 1 {
		t.Errorf("suppressed finding absorbed the baseline entry: %v", findings)
	}
	if errdrop != 2 {
		t.Errorf("got %d errdrop findings, want the fixture's 2: %v", errdrop, findings)
	}
}

// TestCacheReuse verifies the result cache end to end on the fixture
// whose findings exercise the most machinery (suppress: cached
// suppression state must be revalidated, not replayed): a second run
// reuses the cache file and reproduces the first run's findings exactly.
func TestCacheReuse(t *testing.T) {
	root := moduleRoot(t)
	for _, name := range []string{"suppress", "errdrop"} {
		t.Run(name, func(t *testing.T) {
			pat := []string{"./internal/lint/testdata/" + name}
			cfg := DefaultConfig("imca")
			cfg.CacheDir = t.TempDir()

			first, err := Run(root, pat, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := os.Stat(filepath.Join(cfg.CacheDir, "imcalint.json")); err != nil {
				t.Fatalf("cache file not written: %v", err)
			}
			second, err := Run(root, pat, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(first) == 0 || len(first) != len(second) {
				t.Fatalf("cached run differs: %d vs %d findings", len(first), len(second))
			}
			for i := range first {
				if first[i].String() != second[i].String() {
					t.Errorf("finding %d differs: %q vs %q", i, first[i], second[i])
				}
			}
		})
	}
}

// TestCacheKeyFingerprint verifies that policy changes invalidate cache
// keys: the same package hashes differently under a different enabled-
// check set or host-side allowlist, so stale results can never be reused
// across config changes.
func TestCacheKeyFingerprint(t *testing.T) {
	root := moduleRoot(t)
	module, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal/lint/testdata/errdrop")
	h := newDepHasher(root, module)
	cfg := DefaultConfig("imca")

	all := map[string]bool{}
	for _, c := range Checks {
		all[c] = true
	}
	base, err := h.key(dir, cfg, all)
	if err != nil {
		t.Fatal(err)
	}
	one, err := h.key(dir, cfg, map[string]bool{"errdrop": true})
	if err != nil {
		t.Fatal(err)
	}
	if base == one {
		t.Error("enabled-check set not in the cache key")
	}
	cfg2 := DefaultConfig("imca")
	cfg2.HostSide = append(cfg2.HostSide, "imca/internal/lint/testdata/errdrop")
	host, err := h.key(dir, cfg2, all)
	if err != nil {
		t.Fatal(err)
	}
	if base == host {
		t.Error("host-side allowlist not in the cache key")
	}
	again, err := newDepHasher(root, module).key(dir, cfg, all)
	if err != nil {
		t.Fatal(err)
	}
	if base != again {
		t.Error("cache key not deterministic across hasher instances")
	}
}

// TestHotPathRoots verifies the parse-only root listing that cmd/benchdiff
// cross-checks benchmark coverage against: the repo's annotated roots are
// found without type-checking, with their notes.
func TestHotPathRoots(t *testing.T) {
	root := moduleRoot(t)
	roots, err := HotPathRoots(root, []string{"./internal/sim", "./internal/flight", "./internal/telemetry"})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"internal/sim.Env.RunUntil":       false,
		"internal/flight.Recorder.Append": false,
		"internal/telemetry.Hist.Observe": false,
	}
	for _, r := range roots {
		if _, ok := want[r.Name]; ok {
			want[r.Name] = true
		}
		if r.Note == "" {
			t.Errorf("root %s has an empty note", r.Name)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("annotated root %s not listed (got %v)", name, roots)
		}
	}
}

// TestOutputForms verifies that the JSON and SARIF encodings agree with
// the text form on count and content.
func TestOutputForms(t *testing.T) {
	root := moduleRoot(t)
	findings, err := Run(root, []string{"./internal/lint/testdata/errdrop"}, DefaultConfig("imca"))
	if err != nil {
		t.Fatal(err)
	}
	var jsonBuf, sarifBuf strings.Builder
	if err := WriteJSON(&jsonBuf, findings); err != nil {
		t.Fatal(err)
	}
	if err := WriteSARIF(&sarifBuf, findings); err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if !strings.Contains(jsonBuf.String(), f.Msg) {
			t.Errorf("JSON output missing finding %q", f.Msg)
		}
		if !strings.Contains(sarifBuf.String(), f.Msg) {
			t.Errorf("SARIF output missing finding %q", f.Msg)
		}
	}
	if !strings.Contains(sarifBuf.String(), `"version": "2.1.0"`) {
		t.Error("SARIF output missing version")
	}
	for _, check := range Checks {
		if !strings.Contains(sarifBuf.String(), `"id": "`+check+`"`) {
			t.Errorf("SARIF rules missing check %s", check)
		}
	}
}
