package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// The taskparity check guards the repo's two-engine equivalence claim:
// every workload runs on either the goroutine-park engine (*sim.Proc) or
// the heap-scheduled continuation engine (*sim.Task), and the two must
// stay interchangeable. A type becomes "task-ready" the moment it
// declares one method whose first parameter is *sim.Task; from then on,
// every exported blocking operation on it — first parameter *sim.Proc —
// must have a <Name>T sibling, and the two siblings must consume the same
// kernel scheduling primitives. Sleep is Sleep on both engines; WaitT is
// Wait's continuation twin; reaching Acquire on one side and nothing on
// the other means the engines charge different schedule costs for the
// same operation and their traces diverge.
//
// The primitive sets are compared after normalization: Proc./Task.
// receivers are stripped and the task engine's trailing-T spellings fold
// onto their blocking twins (Event.WaitT ≡ Event.Wait, Resource.AcquireT
// ≡ Resource.Acquire). The walk is the same static DFS the other
// reachability checks use and shares its blind spot: calls through stored
// function values are invisible.
//
// Types that are not yet task-ready are deliberately out of scope — the
// task engine is being grown layer by layer, and the check's job is to
// keep each converted surface complete, not to demand the whole tree
// convert at once. The sim kernel itself is exempt: it implements the
// primitives, so its Proc/Task method pairs are the definitions being
// normalized against, not consumers of them.
func checkTaskParity(ld *loader, pkg *pkgInfo, cfg *Config) []Finding {
	if cfg.SimPath == "" || pkg.path == cfg.SimPath {
		return nil
	}

	type method struct {
		decl  *ast.FuncDecl
		fn    *types.Func
		actor string // "Proc", "Task", or ""
	}
	byType := make(map[string]map[string]method)
	var typeNames []string
	taskReady := make(map[string]bool)
	for _, f := range pkg.files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 || fd.Body == nil {
				continue
			}
			fn, ok := pkg.info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			tname := recvTypeName(fd.Recv.List[0].Type)
			if byType[tname] == nil {
				byType[tname] = make(map[string]method)
				typeNames = append(typeNames, tname)
			}
			m := method{decl: fd, fn: fn, actor: firstParamActor(fn, cfg.SimPath)}
			byType[tname][fd.Name.Name] = m
			if m.actor == "Task" {
				taskReady[tname] = true
			}
		}
	}
	sort.Strings(typeNames)

	var out []Finding
	for _, tname := range typeNames {
		if !taskReady[tname] {
			continue
		}
		methods := byType[tname]
		names := make([]string, 0, len(methods))
		for name := range methods {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			m := methods[name]
			if m.actor != "Proc" || !ast.IsExported(name) || strings.HasSuffix(name, "T") {
				continue
			}
			sib, ok := methods[name+"T"]
			if !ok {
				out = append(out, Finding{
					Pos:   pkg.pos(m.decl.Name.Pos()),
					Check: "taskparity",
					Msg: tname + "." + name + " blocks a *sim.Proc but " + tname +
						" has no " + name + "T sibling — the task engine cannot drive this operation",
				})
				continue
			}
			if sib.actor != "Task" {
				out = append(out, Finding{
					Pos:   pkg.pos(sib.decl.Name.Pos()),
					Check: "taskparity",
					Msg: tname + "." + name + "T exists but its first parameter is not *sim.Task — " +
						"it is not the continuation sibling of " + tname + "." + name,
				})
				continue
			}
			procSet := schedSetOf(ld, m.fn, cfg.SimPath)
			taskSet := schedSetOf(ld, sib.fn, cfg.SimPath)
			procOnly, taskOnly := setDiff(procSet, taskSet)
			if len(procOnly) == 0 && len(taskOnly) == 0 {
				continue
			}
			msg := tname + "." + name + " and " + tname + "." + name + "T reach different scheduling primitives"
			if len(procOnly) > 0 {
				msg += "; proc-only: " + strings.Join(procOnly, ", ")
			}
			if len(taskOnly) > 0 {
				msg += "; task-only: " + strings.Join(taskOnly, ", ")
			}
			out = append(out, Finding{
				Pos:   pkg.pos(sib.decl.Name.Pos()),
				Check: "taskparity",
				Msg:   msg + " — the engines would charge different schedule costs for the same operation",
			})
		}
	}
	return out
}

// firstParamActor names the sim actor a function's first parameter is
// ("Proc", "Task"), or "" for anything else.
func firstParamActor(fn *types.Func, simPath string) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params() == nil || sig.Params().Len() == 0 {
		return ""
	}
	t := sig.Params().At(0).Type()
	if !isSimActor(t, simPath) {
		return ""
	}
	named := t.(*types.Pointer).Elem().(*types.Named)
	return named.Obj().Name()
}

// schedSetOf walks the static call graph from fn and returns the set of
// kernel scheduling primitives it reaches, normalized across engines.
func schedSetOf(ld *loader, fn *types.Func, simPath string) map[string]bool {
	c := &schedCollector{
		idx:     ld.funcIndex(),
		simPath: simPath,
		visited: make(map[*types.Func]bool),
		set:     make(map[string]bool),
	}
	c.walkFunc(fn)
	return c.set
}

type schedCollector struct {
	idx     map[*types.Func]funcRef
	simPath string
	visited map[*types.Func]bool
	set     map[string]bool
}

func (c *schedCollector) walkFunc(f *types.Func) {
	f = f.Origin()
	if c.visited[f] {
		return
	}
	c.visited[f] = true
	ref, ok := c.idx[f]
	if !ok {
		return
	}
	c.walkBody(ref.pkg, ref.decl.Body)
}

func (c *schedCollector) walkBody(pkg *pkgInfo, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := simSchedCallee(pkg.info, call, c.simPath); ok {
			c.set[normalizeSched(strings.TrimPrefix(name, "sim."))] = true
			// Stop at the primitive: its internals (park vs continuation
			// push) are exactly the engine difference being abstracted.
			return true
		}
		if f := calleeFunc(pkg.info, call); f != nil {
			c.walkFunc(f)
		}
		return true
	})
}

// normalizeSched folds the task engine's spelling of a primitive onto the
// blocking engine's: receiver Proc/Task is dropped (Proc.Sleep and
// Task.Sleep are the same charge) and a trailing T is trimmed
// (Event.WaitT ≡ Event.Wait). Every T-suffixed name in simSchedMethods is
// a task variant, so the trim is safe.
func normalizeSched(key string) string {
	if recv, name, ok := strings.Cut(key, "."); ok && (recv == "Proc" || recv == "Task") {
		key = name
	}
	key = strings.TrimSuffix(key, "T")
	// Proc.Spawn is literal sugar for Env.Process (one new actor, one
	// schedule), and Env.StartTask is the continuation engine's spelling
	// of the same charge; all three fold together so a sibling pair may
	// fan out with whichever actor representation fits its workers.
	if key == "Spawn" || key == "Env.StartTask" {
		return "Env.Process"
	}
	return key
}

// setDiff returns the sorted elements only in a and only in b.
func setDiff(a, b map[string]bool) (onlyA, onlyB []string) {
	for k := range a {
		if !b[k] {
			onlyA = append(onlyA, k)
		}
	}
	for k := range b {
		if !a[k] {
			onlyB = append(onlyB, k)
		}
	}
	sort.Strings(onlyA)
	sort.Strings(onlyB)
	return onlyA, onlyB
}
