package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The allocfree check turns the repo's 0-alloc hot-path claims from
// runtime AllocsPerRun spot checks into compile-time guarantees. A
// function is marked as a hot-path root with
//
//	//imcalint:hotpath <note>
//
// in its doc comment (the note is mandatory — it says which benchmark or
// figure depends on the path). The check then walks the static call
// graph from every root — across package boundaries, through function
// literals — and flags each heap-allocating construct it can reach:
//
//   - function literals (each one allocates its closure),
//   - the append builtin (backing-array growth),
//   - make and new,
//   - address-taken composite literals and map/slice literals,
//   - non-constant string concatenation,
//   - string<->byte/rune-slice conversions,
//   - interface boxing: passing or converting a concrete non-pointer
//     value where an interface is expected.
//
// Arguments of panic calls are not walked: a deadlock diagnostic built
// with fmt.Sprintf is cold by definition. Calls through stored function
// values are invisible to the walk, as with any static analysis — which
// is exactly why the dispatch loop's ev.fn() indirection keeps the
// kernel root tractable.

const hotpathPrefix = "//imcalint:hotpath"

// hotpathRoot is one annotated function in a type-checked package.
type hotpathRoot struct {
	fn   *types.Func
	decl *ast.FuncDecl
	note string
}

// collectHotpathRoots finds the annotated functions of pkg. A directive
// outside a function's doc comment is a finding: an annotation that binds
// to nothing guards nothing.
func collectHotpathRoots(pkg *pkgInfo) ([]hotpathRoot, []Finding) {
	var roots []hotpathRoot
	var bad []Finding
	claimed := make(map[*ast.Comment]bool)
	for _, f := range pkg.files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				rest, ok := strings.CutPrefix(c.Text, hotpathPrefix)
				if !ok {
					continue
				}
				claimed[c] = true
				note := strings.TrimSpace(rest)
				if note == "" {
					bad = append(bad, Finding{Pos: pkg.pos(c.Pos()), Check: "allocfree",
						Msg: "hotpath annotation is missing a note — say which benchmark or figure depends on this path"})
					continue
				}
				if fd.Body == nil {
					bad = append(bad, Finding{Pos: pkg.pos(c.Pos()), Check: "allocfree",
						Msg: "hotpath annotation on a body-less declaration guards nothing"})
					continue
				}
				if obj, ok := pkg.info.Defs[fd.Name].(*types.Func); ok {
					roots = append(roots, hotpathRoot{fn: obj, decl: fd, note: note})
				}
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, hotpathPrefix) && !claimed[c] {
					bad = append(bad, Finding{Pos: pkg.pos(c.Pos()), Check: "allocfree",
						Msg: "hotpath annotation must be in a function's doc comment — it binds to nothing here"})
				}
			}
		}
	}
	return roots, bad
}

// checkAllocFree walks the call graph from every hot-path root annotated
// in pkg and flags reachable allocation sites.
func checkAllocFree(ld *loader, pkg *pkgInfo, cfg *Config) []Finding {
	roots, out := collectHotpathRoots(pkg)
	if len(roots) == 0 {
		return out
	}
	reported := make(map[token.Pos]bool)
	for _, root := range roots {
		w := &allocWalker{
			idx:      ld.funcIndex(),
			out:      &out,
			reported: reported,
			visited:  make(map[*types.Func]bool),
		}
		w.walkBody(pkg, root.decl.Body, []string{funcKey(root.fn)})
	}
	return out
}

type allocWalker struct {
	idx      map[*types.Func]funcRef
	out      *[]Finding
	reported map[token.Pos]bool
	visited  map[*types.Func]bool
}

func (w *allocWalker) flag(pkg *pkgInfo, pos token.Pos, chain []string, what string) {
	if w.reported[pos] {
		return
	}
	w.reported[pos] = true
	*w.out = append(*w.out, Finding{
		Pos:   pkg.pos(pos),
		Check: "allocfree",
		Msg:   what + " on the hot path rooted at " + chain[0] + " (" + strings.Join(chain, " → ") + ")",
	})
}

func (w *allocWalker) walkFunc(f *types.Func, chain []string) {
	f = f.Origin()
	if w.visited[f] {
		return
	}
	w.visited[f] = true
	ref, ok := w.idx[f]
	if !ok {
		return // outside the module (or body-less): nothing to inspect
	}
	w.walkBody(ref.pkg, ref.decl.Body, append(chain, funcKey(f)))
}

func (w *allocWalker) walkBody(pkg *pkgInfo, body *ast.BlockStmt, chain []string) {
	info := pkg.info
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.flag(pkg, n.Pos(), chain, "function literal allocates its closure")
			return true // continuation bodies run on the same hot path; keep walking
		case *ast.CallExpr:
			return w.call(pkg, n, chain)
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := info.Types[n]; ok && tv.Value == nil && isStringType(tv.Type) {
					w.flag(pkg, n.Pos(), chain, "non-constant string concatenation allocates")
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					w.flag(pkg, n.Pos(), chain, "address-taken composite literal escapes to the heap")
				}
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					w.flag(pkg, n.Pos(), chain, "map literal allocates")
				case *types.Slice:
					w.flag(pkg, n.Pos(), chain, "slice literal allocates its backing array")
				}
			}
		}
		return true
	})
}

// call handles one call expression on the walk: builtins, conversions,
// boxing at the call boundary, and recursion into statically resolved
// module callees. It returns false to stop the inspection from
// descending (panic arguments are cold paths).
func (w *allocWalker) call(pkg *pkgInfo, call *ast.CallExpr, chain []string) bool {
	info := pkg.info
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				w.flag(pkg, call.Pos(), chain, "append may grow its backing array")
			case "make":
				w.flag(pkg, call.Pos(), chain, "make allocates")
			case "new":
				w.flag(pkg, call.Pos(), chain, "new allocates")
			case "panic":
				return false // diagnostics on the way down are cold by definition
			}
			return true
		}
	}
	// Conversions: T(x) where T is a type.
	if len(call.Args) == 1 {
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			w.conversion(pkg, call, tv.Type, chain)
			return true
		}
	}
	f := calleeFunc(info, call)
	if f == nil {
		return true // indirect call: invisible to the static walk
	}
	w.boxing(pkg, call, f, chain)
	w.walkFunc(f, chain)
	return true
}

// conversion flags allocating type conversions: string<->[]byte/[]rune
// and boxing a concrete non-pointer value into an interface.
func (w *allocWalker) conversion(pkg *pkgInfo, call *ast.CallExpr, to types.Type, chain []string) {
	arg := call.Args[0]
	tv, ok := pkg.info.Types[arg]
	if !ok {
		return
	}
	from := tv.Type
	switch {
	case isStringType(to) && isByteOrRuneSlice(from),
		isByteOrRuneSlice(to) && isStringType(from):
		w.flag(pkg, call.Pos(), chain, "string/slice conversion copies and allocates")
	case types.IsInterface(to.Underlying()) && boxes(from, tv):
		w.flag(pkg, call.Pos(), chain, "converting "+from.String()+" to an interface allocates (boxing)")
	}
}

// boxing flags call arguments whose assignment to an interface-typed
// parameter heap-allocates: a concrete, non-pointer value. Pointers,
// interfaces, channels and nil ride in the interface word for free.
func (w *allocWalker) boxing(pkg *pkgInfo, call *ast.CallExpr, f *types.Func, chain []string) {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Params() == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			st, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue // f(xs...) spread: no per-element boxing here
			}
			pt = st.Elem()
		default:
			continue
		}
		if pt == nil || !types.IsInterface(pt.Underlying()) {
			continue
		}
		tv, ok := pkg.info.Types[arg]
		if !ok || !boxes(tv.Type, tv) {
			continue
		}
		w.flag(pkg, arg.Pos(), chain, "passing "+tv.Type.String()+" to an interface parameter of "+
			funcKey(f)+" allocates (boxing)")
	}
}

// boxes reports whether storing a value of type t into an interface
// heap-allocates: t is concrete, not a pointer shape, and not untyped
// nil.
func boxes(t types.Type, tv types.TypeAndValue) bool {
	if t == nil || tv.IsNil() {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		_ = u
		return false
	case *types.Basic:
		return u.Kind() != types.UntypedNil
	}
	return true
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// Root is one hot-path annotation, as reported by HotPathRoots: the
// function's qualified name ("internal/sim.Env.RunUntil"), where it is,
// and the annotation's note.
type Root struct {
	Name string
	File string
	Line int
	Note string
}

// HotPathRoots scans the packages matched by patterns for
// //imcalint:hotpath annotations without type-checking anything — a
// parse-only pass cheap enough for other tools (cmd/benchdiff) to
// cross-check their hot-path coverage against the lint roots.
func HotPathRoots(root string, patterns []string) ([]Root, error) {
	dirs, err := expandPatterns(root, patterns)
	if err != nil {
		return nil, err
	}
	var out []Root
	fset := token.NewFileSet()
	for _, dir := range dirs {
		files, err := goFilesIn(dir)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return nil, err
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		rel = filepath.ToSlash(rel)
		for _, name := range files {
			path := filepath.Join(dir, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					rest, ok := strings.CutPrefix(c.Text, hotpathPrefix)
					if !ok {
						continue
					}
					qual := fd.Name.Name
					if fd.Recv != nil && len(fd.Recv.List) > 0 {
						qual = recvTypeName(fd.Recv.List[0].Type) + "." + qual
					}
					out = append(out, Root{
						Name: rel + "." + qual,
						File: rel + "/" + name,
						Line: fset.Position(c.Pos()).Line,
						Note: strings.TrimSpace(rest),
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// recvTypeName renders a receiver type expression as its base type name.
func recvTypeName(expr ast.Expr) string {
	switch t := ast.Unparen(expr).(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.IndexExpr:
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	}
	return "?"
}
