package lint

import (
	"go/ast"
	"go/types"
)

// simSchedMethods names the sim-kernel entry points that schedule events,
// park processes, or otherwise advance the virtual clock, keyed as
// "Receiver.Method" (or a bare name for package functions). The unexported
// primitives are included so reachability analysis inside the kernel
// itself cannot slip past the exported surface.
// Env.Defer is in the set because *calling* it inserts a timer into the
// event heap — from a tick observer that is exactly the perturbation the
// check exists to catch. The callback it arms is a different matter: it
// runs later, in scheduler context, where scheduling is legal (the fault
// injector's whole mechanism), so a Defer callback is ordinary sim-side
// code and is never treated as an observer.
var simSchedMethods = map[string]bool{
	"Env.Process": true, "Env.Run": true, "Env.RunUntil": true, "Env.Defer": true,
	"Env.StartTask": true,
	"Env.schedule":  true, "Env.scheduleProc": true, "Env.wake": true,
	"Proc.Sleep": true, "Proc.Yield": true, "Proc.Spawn": true, "Proc.park": true,
	"Task.Sleep": true, "Task.End": true,
	"Event.Wait": true, "Event.WaitUntil": true, "Event.Trigger": true,
	"Event.WaitT": true, "Event.WaitUntilT": true,
	"Chan.Send": true, "Chan.TrySend": true, "Chan.Recv": true, "Chan.TryRecv": true,
	"Resource.Acquire": true, "Resource.Release": true, "Resource.Use": true,
	"Resource.AcquireT": true, "Resource.UseT": true,
	"Barrier.Wait": true, "Barrier.WaitT": true,
	"WaitAll": true,
}

// calleeFunc resolves a call expression to the function or method object
// it statically invokes, or nil for indirect calls and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// funcKey renders a function object as "Receiver.Name" or "Name",
// collapsing generic instantiations to their origin.
func funcKey(f *types.Func) string {
	f = f.Origin()
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return f.Name()
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return f.Name()
	}
	return named.Origin().Obj().Name() + "." + f.Name()
}

// simSchedCallee reports whether call statically invokes one of the sim
// kernel's scheduling entry points, returning its display name.
func simSchedCallee(info *types.Info, call *ast.CallExpr, simPath string) (string, bool) {
	f := calleeFunc(info, call)
	if f == nil || simPath == "" || f.Pkg() == nil || f.Pkg().Path() != simPath {
		return "", false
	}
	key := funcKey(f)
	if simSchedMethods[key] {
		return "sim." + key, true
	}
	return "", false
}

// isSimActor reports whether t is *sim.Proc or *sim.Task — the two client
// engines' execution contexts.
func isSimActor(t types.Type, simPath string) bool {
	if simPath == "" || t == nil {
		return false
	}
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return (obj.Name() == "Proc" || obj.Name() == "Task") &&
		obj.Pkg() != nil && obj.Pkg().Path() == simPath
}

// passesSimProc reports whether any argument of call is a *sim.Proc or
// *sim.Task: in this codebase, a function taking one can block or schedule
// continuations and so advance virtual time, which makes its invocation
// order part of the simulation's behaviour.
func passesSimProc(info *types.Info, call *ast.CallExpr, simPath string) bool {
	for _, arg := range call.Args {
		if tv, ok := info.Types[arg]; ok && isSimActor(tv.Type, simPath) {
			return true
		}
	}
	return false
}
