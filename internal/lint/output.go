package lint

import (
	"encoding/json"
	"io"
)

// Machine-readable finding encodings: a flat JSON array for scripting and
// SARIF 2.1.0 for GitHub code-scanning annotations. Both render the same
// findings Run returned, in the same deterministic order, so the three
// output forms (text, JSON, SARIF) of one run always agree.

// jsonFinding is the -json wire form of one finding.
type jsonFinding struct {
	File  string `json:"file"`
	Line  int    `json:"line"`
	Col   int    `json:"col,omitempty"`
	Check string `json:"check"`
	Msg   string `json:"msg"`
}

// WriteJSON writes findings as a JSON array, one object per finding.
func WriteJSON(w io.Writer, findings []Finding) error {
	out := make([]jsonFinding, len(findings))
	for i, f := range findings {
		out[i] = jsonFinding{
			File: f.Pos.Filename, Line: f.Pos.Line, Col: f.Pos.Column,
			Check: f.Check, Msg: f.Msg,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// checkHelp is the one-line rule description published in SARIF rule
// metadata, keyed by check name. The two bookkeeping pseudo-checks are
// included so their findings annotate too.
var checkHelp = map[string]string{
	"wallclock":     "simulated code must use the virtual clock, not time.Now/Since/Sleep",
	"rand":          "randomness must flow from internal/xrand's seeded generators",
	"maprange":      "map iteration order must not leak into output, returns, registration, or simulated activity",
	"nogoroutine":   "simulated code is single-threaded; concurrency belongs to sim.Chan/sim.Event",
	"tickpurity":    "tick observers must never schedule or advance the virtual clock",
	"allocfree":     "annotated hot paths must not reach heap-allocating constructs",
	"taskparity":    "blocking operations on task-ready types need *T siblings with identical schedule consumption",
	"instrcomplete": "hot-path layers must register their instruments; flight record kinds must be declared constants",
	"errdrop":       "module-internal errors and completion callbacks must not be silently dropped",
	"suppress":      "//imcalint:allow annotations must be well-formed and cover a real finding",
	"baseline":      "lint.baseline entries must match a finding; regenerate to shrink the baseline",
}

// SARIF 2.1.0, minimally: one run, one rule per check, one result per
// finding. Structs stay local — the schema is the interface.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID        string       `json:"id"`
	ShortDesc sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF writes findings as a SARIF 2.1.0 log suitable for GitHub
// code scanning. Rules are emitted for every check so annotations carry
// their invariant's description even when a run is clean.
func WriteSARIF(w io.Writer, findings []Finding) error {
	var rules []sarifRule
	for _, name := range Checks {
		rules = append(rules, sarifRule{ID: name, ShortDesc: sarifMessage{Text: checkHelp[name]}})
	}
	for _, name := range []string{"suppress", "baseline"} {
		rules = append(rules, sarifRule{ID: name, ShortDesc: sarifMessage{Text: checkHelp[name]}})
	}
	results := make([]sarifResult, len(findings))
	for i, f := range findings {
		line := f.Pos.Line
		if line < 1 {
			line = 1 // SARIF requires a positive line
		}
		results[i] = sarifResult{
			RuleID:  f.Check,
			Level:   "error",
			Message: sarifMessage{Text: f.Msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: f.Pos.Filename},
					Region:           sarifRegion{StartLine: line, StartColumn: f.Pos.Column},
				},
			}},
		}
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "imcalint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&log)
}
