package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// checkMapRange flags `for range` statements over maps whose iteration
// order leaks into something order-sensitive: formatted output, a slice
// the function returns, instrument registration, or simulated activity
// (any call that takes a *sim.Proc or schedules on the kernel). Go
// randomizes map iteration order per run, so each of those turns into
// run-to-run nondeterminism. The fix is always the same: collect the keys,
// sort them, iterate the slice — and a loop that only collects keys into a
// slice that is sorted afterwards is recognized as exactly that idiom and
// not flagged.
func checkMapRange(pkg *pkgInfo, cfg *Config) []Finding {
	var out []Finding
	for _, f := range pkg.files {
		v := &mrVisitor{pkg: pkg, cfg: cfg, out: &out}
		ast.Walk(v, f)
	}
	return out
}

// mrVisitor walks a file keeping track of the innermost enclosing function
// so a range statement can be judged against that function's returns and
// later sort calls.
type mrVisitor struct {
	pkg *pkgInfo
	cfg *Config
	out *[]Finding
	fn  ast.Node // enclosing *ast.FuncDecl or *ast.FuncLit, or nil
}

func (v *mrVisitor) Visit(n ast.Node) ast.Visitor {
	switch n := n.(type) {
	case *ast.FuncDecl, *ast.FuncLit:
		return &mrVisitor{pkg: v.pkg, cfg: v.cfg, out: v.out, fn: n}
	case *ast.RangeStmt:
		v.checkRange(n)
	}
	return v
}

func (v *mrVisitor) checkRange(rng *ast.RangeStmt) {
	tv, ok := v.pkg.info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	info := v.pkg.info
	var sinkMsg string
	var appends []types.Object
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sinkMsg != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := simSchedCallee(info, n, v.cfg.SimPath); ok {
				sinkMsg = "schedules simulated activity (" + name + ") in map iteration order"
			} else if passesSimProc(info, n, v.cfg.SimPath) {
				sinkMsg = "drives simulated activity (a *sim.Proc or *sim.Task call) in map iteration order"
			} else if name, ok := outputCallee(info, n); ok {
				sinkMsg = "writes output (" + name + ") in map iteration order"
			} else if name, ok := registerCallee(info, n); ok {
				sinkMsg = "registers instruments (" + name + ") in map iteration order"
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(info, call) && i < len(n.Lhs) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						if obj := objectOf(info, id); obj != nil {
							appends = append(appends, obj)
						}
					}
				}
			}
		}
		return true
	})
	if sinkMsg == "" {
		for _, obj := range appends {
			if v.sortedAfter(obj, rng) {
				continue
			}
			if v.returned(obj) {
				sinkMsg = "appends to returned slice " + obj.Name() + " in map iteration order"
				break
			}
		}
	}
	if sinkMsg != "" {
		*v.out = append(*v.out, Finding{
			Pos:   v.pkg.pos(rng.Pos()),
			Check: "maprange",
			Msg:   "map iteration " + sinkMsg + " — collect and sort the keys first",
		})
	}
}

// sortedAfter reports whether obj is passed to a sorting call after the
// range statement within the enclosing function: the collect-then-sort
// idiom. Sorting calls are the sort and slices packages plus any function
// named Sort* (domain-specific orderings like optrace.SortLayers).
func (v *mrVisitor) sortedAfter(obj types.Object, rng *ast.RangeStmt) bool {
	if v.fn == nil {
		return false
	}
	found := false
	ast.Inspect(v.fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		f := calleeFunc(v.pkg.info, call)
		if f == nil {
			return true
		}
		stdSort := f.Pkg() != nil && (f.Pkg().Path() == "sort" || f.Pkg().Path() == "slices")
		if !stdSort && !strings.HasPrefix(f.Name(), "Sort") {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && objectOf(v.pkg.info, id) == obj {
				found = true
			}
		}
		return true
	})
	return found
}

// returned reports whether obj is a named result of the enclosing function
// or appears in one of its return statements.
func (v *mrVisitor) returned(obj types.Object) bool {
	if v.fn == nil {
		return false
	}
	var ftype *ast.FuncType
	var body *ast.BlockStmt
	switch fn := v.fn.(type) {
	case *ast.FuncDecl:
		ftype, body = fn.Type, fn.Body
	case *ast.FuncLit:
		ftype, body = fn.Type, fn.Body
	}
	if ftype != nil && ftype.Results != nil {
		for _, field := range ftype.Results.List {
			for _, name := range field.Names {
				if objectOf(v.pkg.info, name) == obj {
					return true
				}
			}
		}
	}
	found := false
	if body != nil {
		ast.Inspect(body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			for _, res := range ret.Results {
				ast.Inspect(res, func(e ast.Node) bool {
					if id, ok := e.(*ast.Ident); ok && objectOf(v.pkg.info, id) == obj {
						found = true
					}
					return true
				})
			}
			return true
		})
	}
	return found
}

// outputFuncs are fmt's printing functions (Sprint variants build strings
// and are judged by where those strings go, not here).
var outputFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// writerMethods are method names that conventionally emit ordered output.
var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Printf": true, "Print": true, "Println": true,
}

func outputCallee(info *types.Info, call *ast.CallExpr) (string, bool) {
	f := calleeFunc(info, call)
	if f == nil {
		return "", false
	}
	if f.Pkg() != nil && f.Pkg().Path() == "fmt" && outputFuncs[f.Name()] {
		return "fmt." + f.Name(), true
	}
	if f.Pkg() != nil && f.Pkg().Path() == "io" && f.Name() == "WriteString" {
		return "io.WriteString", true
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil && writerMethods[f.Name()] {
		return funcKey(f), true
	}
	return "", false
}

func registerCallee(info *types.Info, call *ast.CallExpr) (string, bool) {
	f := calleeFunc(info, call)
	if f == nil {
		return "", false
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil &&
		len(f.Name()) >= 8 && f.Name()[:8] == "Register" {
		return funcKey(f), true
	}
	return "", false
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// objectOf resolves an identifier to its object via either Uses or Defs.
func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}
