package lint

import (
	"bufio"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strings"
)

// The baseline file is the analyzer's burn-down list: findings that are
// known, accepted for now, and tracked toward zero rather than suppressed
// line by line in the source. Each entry is one finding in its printed
// form, "file:line: [check] message". Matching ignores the line number —
// unrelated edits move code without changing what the finding is about —
// and is count-aware: N identical entries absorb at most N identical
// findings. An entry matching nothing is reported as a stale finding, so
// the file can never shrink silently; regenerating it (WriteBaseline, or
// imcalint -fix-baseline) is the only way to drop entries, which makes
// every burn-down step an explicit diff in review.

// baselineEntry is one parsed baseline line.
type baselineEntry struct {
	srcLine int // line in the baseline file, for stale reports
	file    string
	check   string
	msg     string
	used    int // findings absorbed so far
	count   int // identical entries folded together
}

func baselineKey(file, check, msg string) string {
	return file + "\x00" + check + "\x00" + msg
}

// baselineLineRE splits "file:line: [check] message".
var baselineLineRE = regexp.MustCompile(`^(.*):(\d+): \[([a-z]+)\] (.*)$`)

// readBaseline parses the baseline file at path. A missing file is an
// empty baseline; a malformed line is an error (a typo must not silently
// stop absorbing its finding).
func readBaseline(path string) (map[string]*baselineEntry, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return map[string]*baselineEntry{}, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()

	entries := make(map[string]*baselineEntry)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		m := baselineLineRE.FindStringSubmatch(line)
		if m == nil {
			return nil, fmt.Errorf("lint: %s:%d: malformed baseline entry (want \"file:line: [check] message\")", path, lineNo)
		}
		file, check, msg := m[1], m[3], m[4]
		if !contains(Checks, check) {
			return nil, fmt.Errorf("lint: %s:%d: unknown check %q in baseline entry", path, lineNo, check)
		}
		key := baselineKey(file, check, msg)
		if e, ok := entries[key]; ok {
			e.count++
		} else {
			entries[key] = &baselineEntry{srcLine: lineNo, file: file, check: check, msg: msg, count: 1}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return entries, nil
}

// applyBaseline drops findings matching baseline entries and reports
// entries that matched nothing as stale. Suppression bookkeeping findings
// ("suppress") and staleness reports themselves are never baselined: a
// broken suppression must always surface.
func applyBaseline(findings []Finding, entries map[string]*baselineEntry, baselinePath string) []Finding {
	kept := findings[:0]
	for _, f := range findings {
		if contains(Checks, f.Check) {
			if e, ok := entries[baselineKey(f.Pos.Filename, f.Check, f.Msg)]; ok && e.used < e.count {
				e.used++
				continue
			}
		}
		kept = append(kept, f)
	}
	var stale []*baselineEntry
	for _, e := range entries {
		if e.used < e.count {
			stale = append(stale, e)
		}
	}
	sort.Slice(stale, func(i, j int) bool { return stale[i].srcLine < stale[j].srcLine })
	for _, e := range stale {
		extra := ""
		if n := e.count - e.used; n > 1 {
			extra = fmt.Sprintf(" (%d copies)", n)
		}
		kept = append(kept, Finding{
			Pos:   positionAt(baselinePath, e.srcLine),
			Check: "baseline",
			Msg: fmt.Sprintf("stale baseline entry%s for %s [%s] %q matches no finding — regenerate with imcalint -fix-baseline",
				extra, e.file, e.check, e.msg),
		})
	}
	return kept
}

// WriteBaseline runs the analysis without a baseline and writes every
// finding of the nine checks to path, sorted, one printed finding per
// line. Suppression bookkeeping findings are excluded — a malformed or
// unused suppression is a bug in the exception list, not a burn-down
// item — and must be fixed before a baseline can be recorded.
func WriteBaseline(root string, patterns []string, cfg *Config, path string) (int, error) {
	bare := *cfg
	bare.BaselinePath = ""
	findings, err := Run(root, patterns, &bare)
	if err != nil {
		return 0, err
	}
	var b strings.Builder
	b.WriteString("# imcalint baseline — known findings tracked for burn-down.\n")
	b.WriteString("# Matching ignores line numbers; regenerate with: go run ./cmd/imcalint -fix-baseline ./...\n")
	n := 0
	for _, f := range findings {
		if !contains(Checks, f.Check) {
			return 0, fmt.Errorf("lint: cannot baseline %s (fix the suppression instead)", f)
		}
		b.WriteString(f.String())
		b.WriteByte('\n')
		n++
	}
	return n, os.WriteFile(resolvePath(root, path), []byte(b.String()), 0o644)
}
