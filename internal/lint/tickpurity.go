package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// checkTickPurity verifies that no function reachable from a
// sim.Env.SetTick observer calls a scheduling method. The tick hook's
// whole guarantee — instrumented runs are byte-identical to uninstrumented
// ones — holds only because the observer runs between event dispatches and
// schedules nothing; one Sleep or Trigger smuggled in through a helper
// would perturb every subsequent event sequence number.
//
// The analysis is a static DFS over calls whose targets resolve to
// declared functions in the module (calls through stored function values
// are invisible to it, as with any static analysis); function literals
// encountered in a reachable body are walked conservatively.
func checkTickPurity(ld *loader, pkg *pkgInfo, cfg *Config) []Finding {
	if cfg.SimPath == "" {
		return nil
	}
	var out []Finding
	reported := make(map[token.Pos]bool)
	for _, f := range pkg.files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pkg.info, call)
			if callee == nil || callee.Pkg() == nil ||
				callee.Pkg().Path() != cfg.SimPath || funcKey(callee) != "Env.SetTick" {
				return true
			}
			if len(call.Args) < 2 {
				return true
			}
			w := &tickWalker{idx: ld.funcIndex(), cfg: cfg, out: &out, reported: reported,
				visited: make(map[*types.Func]bool)}
			w.walkObserver(pkg, call.Args[1])
			return true
		})
	}
	return out
}

// funcRef locates a function declaration and the package it lives in.
type funcRef struct {
	pkg  *pkgInfo
	decl *ast.FuncDecl
}

type tickWalker struct {
	idx      map[*types.Func]funcRef
	cfg      *Config
	out      *[]Finding
	reported map[token.Pos]bool
	visited  map[*types.Func]bool
}

// walkObserver dispatches on the observer expression passed to SetTick.
func (w *tickWalker) walkObserver(pkg *pkgInfo, arg ast.Expr) {
	switch a := ast.Unparen(arg).(type) {
	case *ast.FuncLit:
		w.walkBody(pkg, a.Body, []string{"SetTick observer"})
	case *ast.Ident, *ast.SelectorExpr:
		var id *ast.Ident
		if sel, ok := a.(*ast.SelectorExpr); ok {
			id = sel.Sel
		} else {
			id = a.(*ast.Ident)
		}
		if f, ok := pkg.info.Uses[id].(*types.Func); ok {
			w.walkFunc(f, []string{"SetTick observer"})
		}
	}
}

func (w *tickWalker) walkFunc(f *types.Func, chain []string) {
	f = f.Origin()
	if w.visited[f] {
		return
	}
	w.visited[f] = true
	ref, ok := w.idx[f]
	if !ok {
		return // outside the module (or body-less): nothing to inspect
	}
	w.walkBody(ref.pkg, ref.decl.Body, append(chain, f.Name()))
}

func (w *tickWalker) walkBody(pkg *pkgInfo, body *ast.BlockStmt, chain []string) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := simSchedCallee(pkg.info, call, w.cfg.SimPath); ok {
			if !w.reported[call.Pos()] {
				w.reported[call.Pos()] = true
				*w.out = append(*w.out, Finding{
					Pos:   pkg.pos(call.Pos()),
					Check: "tickpurity",
					Msg: "call to " + name + " is reachable from a tick observer (" +
						strings.Join(chain, " → ") + ") — sampling must never schedule or advance the clock",
				})
			}
			return true
		}
		if f := calleeFunc(pkg.info, call); f != nil {
			w.walkFunc(f, chain)
		}
		return true
	})
}
