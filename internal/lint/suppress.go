package lint

import (
	"go/token"
	"strings"
)

func positionAt(file string, line int) token.Position {
	return token.Position{Filename: file, Line: line}
}

// suppression is one //imcalint:allow comment. A suppression on line L
// covers findings of its check on L (trailing comment) and L+1 (comment on
// the preceding line).
type suppression struct {
	file   string
	line   int
	check  string
	reason string
	used   bool
}

const allowPrefix = "//imcalint:allow"

// collectSuppressions scans a package's comments for allow directives.
// Malformed directives — unknown check name, missing reason — come back as
// findings so they cannot silently suppress nothing.
func collectSuppressions(pkg *pkgInfo) ([]*suppression, []Finding) {
	var sups []*suppression
	var bad []Finding
	for _, f := range pkg.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					continue
				}
				pos := pkg.pos(c.Pos())
				fields := strings.Fields(text)
				if len(fields) == 0 || !contains(Checks, fields[0]) {
					bad = append(bad, Finding{Pos: pos, Check: "suppress",
						Msg: "malformed suppression: want //imcalint:allow <check> <reason> with a known check name"})
					continue
				}
				if len(fields) < 2 {
					bad = append(bad, Finding{Pos: pos, Check: "suppress",
						Msg: "suppression for " + fields[0] + " is missing a reason — every exception must say why"})
					continue
				}
				sups = append(sups, &suppression{
					file:   pos.Filename,
					line:   pos.Line,
					check:  fields[0],
					reason: strings.Join(fields[1:], " "),
				})
			}
		}
	}
	return sups, bad
}

// applySuppressions removes findings covered by a suppression and reports
// suppressions that covered nothing, so stale exceptions surface instead
// of rotting. Unused suppressions for checks outside the enabled set are
// not reported: a filtered run (-check wallclock) must not accuse the
// other checks' suppressions of staleness it never tested.
func applySuppressions(findings []Finding, sups []*suppression, enabled map[string]bool) []Finding {
	kept := findings[:0]
	for _, f := range findings {
		suppressed := false
		for _, s := range sups {
			if s.check == f.Check && s.file == f.Pos.Filename &&
				(s.line == f.Pos.Line || s.line == f.Pos.Line-1) {
				s.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, f)
		}
	}
	for _, s := range sups {
		if !s.used && (enabled == nil || enabled[s.check]) {
			kept = append(kept, Finding{
				Pos:   positionAt(s.file, s.line),
				Check: "suppress",
				Msg:   "suppression for " + s.check + " matches no finding — remove it or move it to the offending line",
			})
		}
	}
	return kept
}
