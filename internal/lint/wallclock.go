package lint

import (
	"go/ast"
	"go/types"
)

// wallclockFuncs are the package-time functions that read or wait on the
// host's clock. Duration arithmetic and unit constants are fine; these are
// not.
var wallclockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// checkWallclock flags calls into the host clock. Simulated code must use
// the virtual clock (sim.Env.Now, Proc.Sleep); host-side code annotates
// its use explicitly.
func checkWallclock(pkg *pkgInfo) []Finding {
	var out []Finding
	for _, f := range pkg.files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := pkg.info.Uses[sel.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			if wallclockFuncs[obj.Name()] {
				out = append(out, Finding{
					Pos:   pkg.pos(sel.Pos()),
					Check: "wallclock",
					Msg: "call to time." + obj.Name() +
						" reads the host clock — simulated code must use the virtual clock (sim.Env.Now, Proc.Sleep)",
				})
			}
			return true
		})
	}
	return out
}
