package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strconv"
)

// The instrcomplete check keeps the observability surface total. Three
// runtime conventions back the repo's reports — telemetry.Registry panics
// on duplicate instrument names at wiring time, layer types expose their
// counters through a Register(*telemetry.Registry, prefix) method, and
// the flight recorder's Kind constants are rendered by Kind.String — and
// each has a silent failure mode this check catches statically:
//
//   - two registrations under one name panic, but only on the first run
//     that wires both (rule A: duplicate name expressions in a function);
//   - a layer with a full hot-path operation surface but no Register
//     method simply vanishes from every report (rule B);
//   - a flight.Append call with an ad-hoc kind value renders as garbage
//     in imcareport timelines (rule C), and a Kind constant missing from
//     Kind.String prints as a bare integer (rule D).
var telemetryRegMethods = map[string]bool{
	"Registry.Counter": true, "Registry.IntCounter": true, "Registry.Gauge": true,
	"Registry.Rate": true, "Registry.Hist": true, "Registry.HistFrom": true,
}

// registerSurface is how many exported sim-actor-first methods a type may
// accumulate before it counts as a full hot-path layer and owes a
// Register method. Three is the smallest real layer surface in the tree
// (read/write/stat); one or two actor methods is a helper, not a layer.
const registerSurface = 3

func checkInstrComplete(pkg *pkgInfo, cfg *Config) []Finding {
	var out []Finding
	out = append(out, instrDupNames(pkg, cfg)...)
	out = append(out, instrRegisterSurface(pkg, cfg)...)
	out = append(out, instrFlightKinds(pkg, cfg)...)
	if pkg.path == cfg.FlightPath {
		out = append(out, instrKindStringTotal(pkg)...)
	}
	return out
}

// instrDupNames flags two registration calls in one function body whose
// name arguments are the same expression — at runtime they render the
// same string and the second panics the Registry. Comparing expression
// text rather than constant values is deliberate: layer names are built
// as prefix+".hits", which never constant-folds but collides all the
// same.
func instrDupNames(pkg *pkgInfo, cfg *Config) []Finding {
	if cfg.TelemetryPath == "" {
		return nil
	}
	var out []Finding
	for _, f := range pkg.files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			seen := make(map[string]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				callee := calleeFunc(pkg.info, call)
				if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != cfg.TelemetryPath ||
					!telemetryRegMethods[funcKey(callee)] {
					return true
				}
				name := types.ExprString(call.Args[0])
				if seen[name] {
					out = append(out, Finding{
						Pos:   pkg.pos(call.Args[0].Pos()),
						Check: "instrcomplete",
						Msg: "instrument name " + name + " is registered twice in " + fd.Name.Name +
							" — the second registration panics the Registry at wiring time",
					})
				}
				seen[name] = true
				return true
			})
		}
	}
	return out
}

// instrRegisterSurface flags a type that has grown a full hot-path
// operation surface (registerSurface exported methods taking a sim actor
// first) without a Register(*telemetry.Registry, ...) method: every run
// through such a layer is invisible to telemetry tables and reports.
func instrRegisterSurface(pkg *pkgInfo, cfg *Config) []Finding {
	if cfg.SimPath == "" || cfg.TelemetryPath == "" || pkg.path == cfg.SimPath {
		return nil
	}
	type surface struct {
		actorMethods []*ast.FuncDecl // exported, actor-first, sorted by name
		hasRegister  bool
	}
	byType := make(map[string]*surface)
	var typeNames []string
	for _, f := range pkg.files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 || fd.Body == nil {
				continue
			}
			fn, ok := pkg.info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			tname := recvTypeName(fd.Recv.List[0].Type)
			s := byType[tname]
			if s == nil {
				s = &surface{}
				byType[tname] = s
				typeNames = append(typeNames, tname)
			}
			if fd.Name.Name == "Register" && firstParamIsRegistry(fn, cfg.TelemetryPath) {
				s.hasRegister = true
			}
			if ast.IsExported(fd.Name.Name) && firstParamActor(fn, cfg.SimPath) != "" {
				s.actorMethods = append(s.actorMethods, fd)
			}
		}
	}
	sort.Strings(typeNames)
	var out []Finding
	for _, tname := range typeNames {
		s := byType[tname]
		if s.hasRegister || len(s.actorMethods) < registerSurface {
			continue
		}
		sort.Slice(s.actorMethods, func(i, j int) bool {
			return s.actorMethods[i].Name.Name < s.actorMethods[j].Name.Name
		})
		out = append(out, Finding{
			Pos:   pkg.pos(s.actorMethods[0].Name.Pos()),
			Check: "instrcomplete",
			Msg: tname + " has " + strconv.Itoa(len(s.actorMethods)) +
				" hot-path operations but no Register(*telemetry.Registry, ...) method — the layer is invisible to reports",
		})
	}
	return out
}

func firstParamIsRegistry(fn *types.Func, telemetryPath string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params() == nil || sig.Params().Len() == 0 {
		return false
	}
	p, ok := sig.Params().At(0).Type().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil && obj.Pkg().Path() == telemetryPath
}

// instrFlightKinds flags flight.Recorder.Append calls whose kind argument
// is not a declared flight.Kind constant: an ad-hoc value has no
// Kind.String name and renders as a bare integer in every timeline.
func instrFlightKinds(pkg *pkgInfo, cfg *Config) []Finding {
	if cfg.FlightPath == "" || pkg.path == cfg.FlightPath {
		return nil
	}
	var out []Finding
	for _, f := range pkg.files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				return true
			}
			callee := calleeFunc(pkg.info, call)
			if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != cfg.FlightPath ||
				funcKey(callee) != "Recorder.Append" {
				return true
			}
			if !isDeclaredKindConst(pkg.info, call.Args[1], cfg.FlightPath) {
				out = append(out, Finding{
					Pos:   pkg.pos(call.Args[1].Pos()),
					Check: "instrcomplete",
					Msg: "flight.Append kind must be a declared flight.Kind constant — " +
						"ad-hoc values have no Kind.String name and render as bare integers",
				})
			}
			return true
		})
	}
	return out
}

// isDeclaredKindConst reports whether expr is (a parenthesization of) a
// named constant of the flight package's Kind type.
func isDeclaredKindConst(info *types.Info, expr ast.Expr, flightPath string) bool {
	var id *ast.Ident
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return false
	}
	c, ok := info.Uses[id].(*types.Const)
	if !ok {
		return false
	}
	named, ok := c.Type().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Kind" && obj.Pkg() != nil && obj.Pkg().Path() == flightPath
}

// instrKindStringTotal runs inside the flight package itself: every Kind
// constant must appear as a case label in Kind.String, or new record
// kinds print as integers the day they are first appended.
func instrKindStringTotal(pkg *pkgInfo) []Finding {
	type kindConst struct {
		name string
		decl *ast.Ident
	}
	var kinds []kindConst
	covered := make(map[string]bool)
	for _, f := range pkg.files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						c, ok := pkg.info.Defs[name].(*types.Const)
						if !ok {
							continue
						}
						if named, ok := c.Type().(*types.Named); ok && named.Obj().Name() == "Kind" &&
							named.Obj().Pkg() == pkg.types {
							kinds = append(kinds, kindConst{name: name.Name, decl: name})
						}
					}
				}
			case *ast.FuncDecl:
				if d.Name.Name != "String" || d.Recv == nil || len(d.Recv.List) == 0 ||
					recvTypeName(d.Recv.List[0].Type) != "Kind" || d.Body == nil {
					continue
				}
				ast.Inspect(d.Body, func(n ast.Node) bool {
					cc, ok := n.(*ast.CaseClause)
					if !ok {
						return true
					}
					for _, e := range cc.List {
						if id, ok := ast.Unparen(e).(*ast.Ident); ok {
							covered[id.Name] = true
						}
					}
					return true
				})
			}
		}
	}
	var out []Finding
	for _, k := range kinds {
		if !covered[k.name] {
			out = append(out, Finding{
				Pos:   pkg.pos(k.decl.Pos()),
				Check: "instrcomplete",
				Msg:   "flight.Kind constant " + k.name + " is not named by Kind.String — it would render as a bare integer",
			})
		}
	}
	return out
}
