package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// pkgInfo is one parsed and type-checked package.
type pkgInfo struct {
	path  string // import path
	dir   string
	fset  *token.FileSet
	files []*ast.File
	types *types.Package
	info  *types.Info
}

// loader parses and type-checks packages of the enclosing module, pulling
// in module-internal dependencies recursively and delegating everything
// else to the standard library's source importer. It needs no toolchain
// invocation and no third-party code.
type loader struct {
	fset    *token.FileSet
	module  string // module path from go.mod
	root    string // module root directory
	std     types.ImporterFrom
	pkgs    map[string]*pkgInfo // by import path; nil entry = load in progress
	loading map[string]bool

	// idx memoizes funcIndex across check invocations; idxGen records how
	// many packages were loaded when it was built, so a lazy load of a new
	// dependency rebuilds it.
	idx    map[*types.Func]funcRef
	idxGen int
}

// funcIndex maps every declared function of every loaded module package
// to its AST, so reachability analyses can cross package boundaries. The
// index is rebuilt whenever a new package has been loaded since the last
// call.
func (l *loader) funcIndex() map[*types.Func]funcRef {
	if l.idx != nil && l.idxGen == len(l.pkgs) {
		return l.idx
	}
	idx := make(map[*types.Func]funcRef)
	for _, pkg := range l.pkgs {
		for _, f := range pkg.files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if obj, ok := pkg.info.Defs[fd.Name].(*types.Func); ok {
					idx[obj] = funcRef{pkg: pkg, decl: fd}
				}
			}
		}
	}
	l.idx, l.idxGen = idx, len(l.pkgs)
	return idx
}

func newLoader(root string) (*loader, error) {
	module, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	// The source importer honors build.Default; without cgo the few
	// cgo-optional stdlib packages (net) fall back to their pure-Go
	// variants, which is all type checking needs.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not support ImportFrom")
	}
	return &loader{
		fset:    fset,
		module:  module,
		root:    root,
		std:     std,
		pkgs:    make(map[string]*pkgInfo),
		loading: make(map[string]bool),
	}, nil
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// importPathFor maps a directory inside the module to its import path.
func (l *loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.module, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module root %s", dir, l.root)
	}
	return l.module + "/" + filepath.ToSlash(rel), nil
}

// dirFor maps a module import path back to its directory.
func (l *loader) dirFor(path string) string {
	if path == l.module {
		return l.root
	}
	rel := strings.TrimPrefix(path, l.module+"/")
	return filepath.Join(l.root, filepath.FromSlash(rel))
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.root, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths are
// loaded from source here; everything else (the standard library) goes to
// the source importer.
func (l *loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// loadDir loads the package in dir (nil if the directory holds no
// non-test Go files).
func (l *loader) loadDir(dir string) (*pkgInfo, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	if ok, err := hasGoFiles(dir); err != nil {
		return nil, err
	} else if !ok {
		return nil, nil
	}
	return l.load(path)
}

func (l *loader) load(path string) (*pkgInfo, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	ents, err := os.ReadDir(dir) // sorted: parse order is deterministic
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, err)
	}
	pkg := &pkgInfo{path: path, dir: dir, fset: l.fset, files: files, types: tpkg, info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// pos resolves a token.Pos against the package's file set.
func (p *pkgInfo) pos(at token.Pos) token.Position { return p.fset.Position(at) }
