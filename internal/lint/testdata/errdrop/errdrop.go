// Package errdrop is an imcalint fixture: silently dropped
// module-internal errors and never-invoked callback parameters, plus the
// visible-discard and suppressed forms that must pass.
package errdrop

import "errors"

func fail() error { return errors.New("simulated fault") }

// Drop discards fail's error silently — a finding — then discards it
// visibly, which is fine.
func Drop() {
	fail()
	_ = fail()
}

// Strand accepts a callback it never invokes or forwards.
func Strand(k func(), n int) int { return n }

// Forward passes its callback on, so it is fine.
func Forward(k func()) { k() }

// Blank declares the drop by naming the parameter _.
func Blank(_ func()) {}

// Allowed strands its callback behind an explicit suppression.
func Allowed(k func()) {} //imcalint:allow errdrop fixture: deliberate strand, pinned by the suppress test
