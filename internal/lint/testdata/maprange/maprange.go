// Package maprange is an imcalint fixture: map iterations whose order
// leaks into output, returned slices, or registries.
package maprange

import (
	"fmt"
	"io"
	"sort"

	"imca/internal/sim"
)

// Registry stands in for an instrument registry.
type Registry struct{ names []string }

// Register records a name.
func (r *Registry) Register(name string) { r.names = append(r.names, name) }

// PrintAll emits one line per entry in map order.
func PrintAll(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v)
	}
}

// Keys returns the keys in map order.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// SortedKeys is the sanctioned idiom: collect, sort, then use.
func SortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Sum only aggregates; order cannot matter.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// RegisterAll registers instruments in map order.
func RegisterAll(r *Registry, m map[string]int) {
	for k := range m {
		r.Register(k)
	}
}

// DumpAll writes entries in map order.
func DumpAll(w io.Writer, m map[string]int) {
	for k := range m {
		io.WriteString(w, k)
	}
}

// SleepAll schedules continuations in map order via the task engine.
func SleepAll(t *sim.Task, m map[string]int) {
	for range m {
		t.Sleep(1, func() {})
	}
}

// touch stands in for any helper that advances virtual time for a task.
func touch(t *sim.Task) {}

// TouchAll drives task-engine activity in map order through a helper.
func TouchAll(t *sim.Task, m map[string]int) {
	for range m {
		touch(t)
	}
}
