// Package suppress is an imcalint fixture: suppression comments that are
// malformed or cover nothing, which must surface rather than rot.
package suppress

// Value has an unused suppression: there is no wallclock finding here.
func Value() int {
	return 42 //imcalint:allow wallclock nothing to suppress
}

// Reasonless has a suppression with no reason.
func Reasonless() int {
	return 7 //imcalint:allow rand
}

// Unknown names a check that does not exist.
func Unknown() int {
	return 1 //imcalint:allow warpdrive not a real check
}
