// Package hostside is a lint fixture: a miniature worker pool using host
// concurrency. Under the default policy (not on the HostSide allowlist)
// every construct below is a finding; with the package allowlisted the
// analyzer must come up empty. The golden test pins the former, the
// allowlist test the latter.
package hostside

import "sync"

func pool(n int, fn func(int)) {
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}
