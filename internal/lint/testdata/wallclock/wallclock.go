// Package wallclock is an imcalint fixture: host-clock reads in code that
// should live on the virtual clock.
package wallclock

import "time"

// Stamp reads the host clock.
func Stamp() int64 { return time.Now().UnixNano() }

// Wait blocks on the host clock.
func Wait() { time.Sleep(time.Millisecond) }

// Age measures host elapsed time.
func Age(t0 time.Time) time.Duration { return time.Since(t0) }

// Units is clean: durations are units, not clock reads.
func Units() time.Duration { return 3 * time.Second }

// Allowed documents an intentional exception.
func Allowed() int64 {
	return time.Now().Unix() //imcalint:allow wallclock fixture: demonstrates an annotated exception
}
