// Package flightkind is an imcalint fixture for the instrcomplete
// check's Kind.String totality rule: the analyzer is pointed at this
// package as its flight-recorder path, and KindC is missing from
// String's switch.
package flightkind

// Kind classifies a record, mirroring internal/flight's shape.
type Kind uint8

const (
	// KindA is named by String.
	KindA Kind = iota
	// KindB is named by String.
	KindB
	// KindC is missing from String — the finding this fixture pins.
	KindC
)

// String names the kinds — incompletely.
func (k Kind) String() string {
	switch k {
	case KindA:
		return "a"
	case KindB:
		return "b"
	}
	return "?"
}
