// Package randpkg is an imcalint fixture: direct math/rand use, whose
// global generator is seeded differently every run.
package randpkg

import "math/rand"

// Roll is nondeterministic across runs.
func Roll() int { return rand.Intn(6) }
