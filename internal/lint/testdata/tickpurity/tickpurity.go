// Package tickpurity is an imcalint fixture: tick observers that reach
// scheduling calls, directly and through a helper chain.
package tickpurity

import "imca/internal/sim"

// Install hooks a literal observer that schedules a process.
func Install(env *sim.Env) {
	env.SetTick(1000, func(at sim.Time) {
		env.Process("sample", func(p *sim.Proc) {})
	})
	env.SetTick(1000, observe)
}

// observe looks pure but reaches a scheduling call through helper.
func observe(at sim.Time) { helper() }

func helper() {
	env := sim.NewEnv()
	done := sim.NewEvent(env)
	done.Trigger(nil)
}

// InstallPure hooks a well-behaved read-only observer.
func InstallPure(env *sim.Env) {
	var last sim.Time
	env.SetTick(1000, func(at sim.Time) { last = at })
	_ = last
}
