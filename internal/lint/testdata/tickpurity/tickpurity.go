// Package tickpurity is an imcalint fixture: tick observers that reach
// scheduling calls, directly and through a helper chain.
package tickpurity

import (
	"imca/internal/flight"
	"imca/internal/sim"
	"imca/internal/telemetry"
)

// Install hooks a literal observer that schedules a process.
func Install(env *sim.Env) {
	env.SetTick(1000, func(at sim.Time) {
		env.Process("sample", func(p *sim.Proc) {})
	})
	env.SetTick(1000, observe)
}

// observe looks pure but reaches a scheduling call through helper.
func observe(at sim.Time) { helper() }

func helper() {
	env := sim.NewEnv()
	done := sim.NewEvent(env)
	done.Trigger(nil)
}

// InstallPure hooks a well-behaved read-only observer.
func InstallPure(env *sim.Env) {
	var last sim.Time
	env.SetTick(1000, func(at sim.Time) { last = at })
	_ = last
}

// InstallArmed hooks an observer that arms a deferred fault mid-sample.
// Defer inserts a timer into the event heap, so reaching it from a tick
// observer is flagged like any other scheduling call.
func InstallArmed(env *sim.Env) {
	env.SetTick(1000, func(at sim.Time) {
		env.Defer(5, func() {})
	})
}

// InstallTask hooks an observer that starts a continuation task. The task
// engine's entry points schedule heap events exactly like process ones, so
// a tick observer may not touch them either.
func InstallTask(env *sim.Env) {
	env.SetTick(1000, func(at sim.Time) {
		env.StartTask("sample", func(t *sim.Task) {
			t.End()
		})
	})
}

// ArmFault mimics the fault injector: Defer called from host context
// between runs is fine, and the callback it arms runs in scheduler
// context, where triggering events and spawning processes is legal.
// Nothing here is reachable from a tick observer, so nothing is flagged.
func ArmFault(env *sim.Env) {
	ev := sim.NewEvent(env)
	env.Defer(5, func() {
		ev.Trigger(nil)
		env.Process("recover", func(p *sim.Proc) {})
	})
}

// InstallInstrumented hooks the shape every instrumented layer uses: a
// tick observer that observes into a hist and appends a flight record.
// Both are pure memory writes that schedule nothing, so the walk reaches
// into telemetry and flight and flags nothing.
func InstallInstrumented(env *sim.Env, h *telemetry.Hist, rec *flight.Recorder) {
	env.SetTick(1000, func(at sim.Time) {
		h.Observe(0)
		rec.Append(at, flight.KindProbe, "sampler", "tick", 0)
	})
}

// InstallMixed hooks an observer whose helper observes and then schedules:
// the observe is legal, but the Process call two hops down the chain is
// flagged like a direct one.
func InstallMixed(env *sim.Env, h *telemetry.Hist) {
	env.SetTick(1000, func(at sim.Time) {
		observeAndSchedule(env, h)
	})
}

func observeAndSchedule(env *sim.Env, h *telemetry.Hist) {
	h.Observe(0)
	env.Process("drain", func(p *sim.Proc) {})
}
