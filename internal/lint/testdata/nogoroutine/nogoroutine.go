// Package nogoroutine is an imcalint fixture: native concurrency in a
// package configured as pure-sim.
package nogoroutine

import "sync"

// Guard is a lock where no second goroutine should exist.
var Guard sync.Mutex

// Fire spawns a goroutine and talks to it over a native channel.
func Fire() int {
	ch := make(chan int, 1)
	go send(ch)
	return <-ch
}

func send(ch chan int) {
	ch <- 1
}
