// Package nogoroutine is an imcalint fixture: native concurrency in a
// package configured as pure-sim.
package nogoroutine

import (
	"sync"

	"imca/internal/flight"
	"imca/internal/sim"
)

// Guard is a lock where no second goroutine should exist.
var Guard sync.Mutex

// Fire spawns a goroutine and talks to it over a native channel.
func Fire() int {
	ch := make(chan int, 1)
	go send(ch)
	return <-ch
}

func send(ch chan int) {
	ch <- 1
}

// ArmFault mimics the fault injector: the deferred callback runs later in
// scheduler context — sim-side code, not a host-side exemption — so native
// concurrency inside it is flagged exactly as it would be anywhere else.
func ArmFault(env *sim.Env) {
	env.Defer(5, func() {
		go send(make(chan int, 1))
	})
}

// RecordAsync mimics an instrumented layer gone wrong: flight appends are
// inline ring writes on the sim thread, never offloaded to a goroutine —
// the recorder is unsynchronized and the append order is the determinism
// contract.
func RecordAsync(rec *flight.Recorder, at sim.Time) {
	go rec.Append(at, flight.KindProbe, "async", "bad", 0)
}
