// Package taskparity is an imcalint fixture: a task-ready type with a
// missing *T sibling, a sibling whose schedule consumption diverges, a
// sibling with the wrong actor, and one suppressed gap. NotReady pins
// that types without task methods stay out of scope.
package taskparity

import (
	"imca/internal/sim"
	"imca/internal/telemetry"
)

// Layer is task-ready: SetT takes a *sim.Task.
type Layer struct{}

// Get has no GetT sibling.
func (l *Layer) Get(p *sim.Proc) { p.Sleep(1) }

// Put sleeps; PutT does not, so their schedule sets diverge.
func (l *Layer) Put(p *sim.Proc) { p.Sleep(1) }

// PutT never reaches Sleep.
func (l *Layer) PutT(t *sim.Task, k func()) { k() }

// Del's sibling takes the wrong actor.
func (l *Layer) Del(p *sim.Proc) {}

// DelT is not a continuation: its first parameter is a *sim.Proc.
func (l *Layer) DelT(p *sim.Proc) {}

// Stat's missing sibling is an accepted, suppressed gap.
//
//imcalint:allow taskparity fixture: deliberate missing sibling, pinned by the suppress test
func (l *Layer) Stat(p *sim.Proc) {}

// SetT makes Layer task-ready.
func (l *Layer) SetT(t *sim.Task, k func()) { t.Sleep(1, k) }

// Set matches SetT: both reach Sleep (Proc.Sleep ≡ Task.Sleep after
// normalization), so no finding.
func (l *Layer) Set(p *sim.Proc) { p.Sleep(1) }

// Register keeps this fixture out of instrcomplete's surface rule — the
// fixture pins taskparity findings only.
func (l *Layer) Register(reg *telemetry.Registry, prefix string) {}

// NotReady has blocking methods but no task methods: out of scope until
// it grows one.
type NotReady struct{}

// Get on a non-task-ready type needs no sibling.
func (n *NotReady) Get(p *sim.Proc) { p.Sleep(1) }
