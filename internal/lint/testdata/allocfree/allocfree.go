// Package allocfree is an imcalint fixture: heap allocations reachable
// from annotated hot-path roots, which must be flagged, plus one
// suppressed site and two malformed annotations.
package allocfree

// sink is an interface parameter so boxing at the call boundary fires.
func sink(v interface{}) { _ = v }

// escape returns an address-taken composite literal, reached through a
// call so the cross-function walk is exercised.
func escape() *point { return &point{x: 1} }

type point struct{ x int }

// Root reaches every allocation flavour the check knows.
//
//imcalint:hotpath fixture: every allocation below must be flagged
func Root(xs []int, s, t string) []int {
	xs = append(xs, 1)
	m := map[string]int{"a": 1}
	_ = m
	f := func() {}
	f()
	_ = s + t
	_ = []byte(s)
	sink(42)
	_ = escape()
	_ = make([]int, 4)
	panic(s + t + "cold diagnostic: never flagged")
}

// Suppressed holds the one allowed allocation on a hot path.
//
//imcalint:hotpath fixture: suppressed case
func Suppressed() {
	_ = make([]int, 4) //imcalint:allow allocfree fixture: deliberate allocation, pinned by the suppress test
}

// NoteMissing has an annotation without a note, which is itself a
// finding.
//
//imcalint:hotpath
func NoteMissing() {}

//imcalint:hotpath fixture: a stray annotation binds to nothing
var stray = 0
