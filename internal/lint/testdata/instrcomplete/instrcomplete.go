// Package instrcomplete is an imcalint fixture: a duplicate instrument
// registration, a layer type with a full hot-path surface and no
// Register method, and a flight.Append with an ad-hoc kind — each next
// to its passing twin, plus one suppressed duplicate.
package instrcomplete

import (
	"imca/internal/flight"
	"imca/internal/sim"
	"imca/internal/telemetry"
)

// Wire registers prefix+".hits" twice: the second call panics the
// Registry at wiring time.
func Wire(reg *telemetry.Registry, prefix string, n func() uint64) {
	reg.Counter(prefix+".hits", n)
	reg.Counter(prefix+".hits", n)
	reg.Counter(prefix+".misses", n)
}

// WireAllowed carries the one suppressed duplicate.
func WireAllowed(reg *telemetry.Registry, n func() uint64) {
	reg.Counter("dup", n)
	reg.Counter("dup", n) //imcalint:allow instrcomplete fixture: deliberate duplicate, pinned by the suppress test
}

// Silent has a full hot-path operation surface and no Register method.
type Silent struct{}

// Read is a hot-path operation.
func (s *Silent) Read(p *sim.Proc) {}

// Write is a hot-path operation.
func (s *Silent) Write(p *sim.Proc) {}

// Stat is a hot-path operation.
func (s *Silent) Stat(p *sim.Proc) {}

// Wired has the same surface plus Register, so it passes.
type Wired struct{}

// Read is a hot-path operation.
func (w *Wired) Read(p *sim.Proc) {}

// Write is a hot-path operation.
func (w *Wired) Write(p *sim.Proc) {}

// Stat is a hot-path operation.
func (w *Wired) Stat(p *sim.Proc) {}

// Register exposes Wired's instruments.
func (w *Wired) Register(reg *telemetry.Registry, prefix string) {}

// Record appends one record with an ad-hoc kind — flagged — and one with
// a declared constant, which passes.
func Record(r *flight.Recorder, at sim.Time) {
	r.Append(at, flight.Kind(42), "actor", "note", 0)
	r.Append(at, flight.KindForward, "actor", "note", 0)
}
