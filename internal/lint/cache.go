package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// The result cache makes `make lint` scale with the size of the change,
// not the size of the tree: a package whose sources — and whose
// module-internal transitive dependencies' sources — are unchanged since
// the last run reuses its recorded findings without being parsed or
// type-checked at all. The dependency closure is in the key because the
// reachability checks (tickpurity, allocfree, taskparity) walk into
// callees across package boundaries: a package can only reach code it
// imports, so hashing the import closure makes the reuse sound. The
// config fingerprint and an analyzer version constant round out the key,
// so policy changes and check changes invalidate everything.

// cacheVersion invalidates every entry when the checks themselves change.
// Bump it whenever a check's behavior or a finding message changes.
const cacheVersion = "imcalint-2"

// cachedFinding and cachedSup are the JSON forms of a finding and a
// suppression; positions are module-root-relative, so the cache is stable
// across checkouts.
type cachedFinding struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Col    int    `json:"col"`
	Check  string `json:"check"`
	Msg    string `json:"msg"`
	Offset int    `json:"offset,omitempty"`
}

type cachedSup struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Check  string `json:"check"`
	Reason string `json:"reason"`
}

type cacheEntry struct {
	Key      string          `json:"key"`
	Findings []cachedFinding `json:"findings"`
	Sups     []cachedSup     `json:"sups"`
}

func (e *cacheEntry) findings() []Finding {
	out := make([]Finding, len(e.Findings))
	for i, c := range e.Findings {
		out[i] = Finding{
			Pos:   token.Position{Filename: c.File, Line: c.Line, Column: c.Col, Offset: c.Offset},
			Check: c.Check,
			Msg:   c.Msg,
		}
	}
	return out
}

// suppressions returns fresh suppression values: applySuppressions
// mutates the used flag, so cached entries must never be shared between
// runs.
func (e *cacheEntry) suppressions() []*suppression {
	out := make([]*suppression, len(e.Sups))
	for i, c := range e.Sups {
		out[i] = &suppression{file: c.File, line: c.Line, check: c.Check, reason: c.Reason}
	}
	return out
}

type cacheFile struct {
	Version  string                 `json:"version"`
	Packages map[string]*cacheEntry `json:"packages"`
}

type resultCache struct {
	path    string
	entries map[string]*cacheEntry
	dirty   bool
}

// openCache loads the cache under cfg.CacheDir (nil when caching is
// disabled). A missing, unreadable or version-skewed cache file is an
// empty cache, never an error: caching must only ever make a run faster.
func openCache(root string, cfg *Config) *resultCache {
	if cfg.CacheDir == "" {
		return nil
	}
	c := &resultCache{
		path:    filepath.Join(resolvePath(root, cfg.CacheDir), "imcalint.json"),
		entries: make(map[string]*cacheEntry),
	}
	data, err := os.ReadFile(c.path)
	if err != nil {
		return c
	}
	var cf cacheFile
	if json.Unmarshal(data, &cf) != nil || cf.Version != cacheVersion || cf.Packages == nil {
		return c
	}
	c.entries = cf.Packages
	return c
}

func (c *resultCache) get(pkgPath, key string) (*cacheEntry, bool) {
	e, ok := c.entries[pkgPath]
	if !ok || e.Key != key {
		return nil, false
	}
	return e, true
}

func (c *resultCache) put(pkgPath, key string, findings []Finding, sups []*suppression) {
	e := &cacheEntry{Key: key, Findings: []cachedFinding{}, Sups: []cachedSup{}}
	for _, f := range findings {
		e.Findings = append(e.Findings, cachedFinding{
			File: f.Pos.Filename, Line: f.Pos.Line, Col: f.Pos.Column,
			Offset: f.Pos.Offset, Check: f.Check, Msg: f.Msg,
		})
	}
	for _, s := range sups {
		e.Sups = append(e.Sups, cachedSup{File: s.file, Line: s.line, Check: s.check, Reason: s.reason})
	}
	c.entries[pkgPath] = e
	c.dirty = true
}

// save writes the cache back, best-effort: a read-only checkout simply
// runs uncached every time.
func (c *resultCache) save() {
	if !c.dirty {
		return
	}
	data, err := json.Marshal(&cacheFile{Version: cacheVersion, Packages: c.entries})
	if err != nil {
		return
	}
	if os.MkdirAll(filepath.Dir(c.path), 0o755) != nil {
		return
	}
	tmp := c.path + ".tmp"
	if os.WriteFile(tmp, data, 0o644) != nil {
		return
	}
	_ = os.Rename(tmp, c.path)
}

// depHasher computes per-package cache keys: a hash over the package's
// own non-test Go sources plus those of every module-internal package in
// its transitive import closure, the config fingerprint, and the
// analyzer version. Imports are discovered with parser.ImportsOnly, so
// keying is cheap even when the analysis itself would not be.
type depHasher struct {
	root    string
	module  string
	fileH   map[string]string   // file path -> content hash
	imports map[string][]string // dir -> module-internal dep dirs
}

func newDepHasher(root, module string) *depHasher {
	return &depHasher{
		root:    root,
		module:  module,
		fileH:   make(map[string]string),
		imports: make(map[string][]string),
	}
}

// key returns the cache key for the package in dir under the given
// config and enabled-check set.
func (h *depHasher) key(dir string, cfg *Config, enabled map[string]bool) (string, error) {
	closure, err := h.closure(dir)
	if err != nil {
		return "", err
	}
	sum := sha256.New()
	fmt.Fprintln(sum, cacheVersion)
	fmt.Fprintln(sum, h.fingerprint(cfg, enabled))
	for _, d := range closure {
		files, err := goFilesIn(d)
		if err != nil {
			return "", err
		}
		rel, _ := filepath.Rel(h.root, d)
		for _, f := range files {
			fh, err := h.fileHash(filepath.Join(d, f))
			if err != nil {
				return "", err
			}
			fmt.Fprintf(sum, "%s/%s %s\n", filepath.ToSlash(rel), f, fh)
		}
	}
	return hex.EncodeToString(sum.Sum(nil)), nil
}

func (h *depHasher) fingerprint(cfg *Config, enabled map[string]bool) string {
	var on []string
	for name := range enabled {
		on = append(on, name)
	}
	sort.Strings(on)
	host := append([]string(nil), cfg.HostSide...)
	sort.Strings(host)
	rnd := append([]string(nil), cfg.RandAllowed...)
	sort.Strings(rnd)
	return strings.Join([]string{
		"host=" + strings.Join(host, ","),
		"rand=" + strings.Join(rnd, ","),
		"sim=" + cfg.SimPath,
		"telemetry=" + cfg.TelemetryPath,
		"flight=" + cfg.FlightPath,
		"checks=" + strings.Join(on, ","),
	}, ";")
}

func (h *depHasher) fileHash(path string) (string, error) {
	if fh, ok := h.fileH[path]; ok {
		return fh, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	fh := hex.EncodeToString(sum[:])
	h.fileH[path] = fh
	return fh, nil
}

// closure returns dir plus every module-internal package directory
// transitively imported from it, sorted.
func (h *depHasher) closure(dir string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	var walk func(d string) error
	walk = func(d string) error {
		if seen[d] {
			return nil
		}
		seen[d] = true
		out = append(out, d)
		deps, err := h.depsOf(d)
		if err != nil {
			return err
		}
		for _, dep := range deps {
			if err := walk(dep); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(dir); err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

// depsOf parses just the import clauses of dir's non-test sources and
// returns the module-internal dependency directories.
func (h *depHasher) depsOf(dir string) ([]string, error) {
	if deps, ok := h.imports[dir]; ok {
		return deps, nil
	}
	files, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	depSet := make(map[string]bool)
	fset := token.NewFileSet()
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == h.module {
				depSet[h.root] = true
			} else if strings.HasPrefix(path, h.module+"/") {
				rel := strings.TrimPrefix(path, h.module+"/")
				depSet[filepath.Join(h.root, filepath.FromSlash(rel))] = true
			}
		}
	}
	deps := make([]string, 0, len(depSet))
	for d := range depSet {
		deps = append(deps, d)
	}
	sort.Strings(deps)
	h.imports[dir] = deps
	return deps, nil
}

// goFilesIn lists the non-test Go files of dir, sorted.
func goFilesIn(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			out = append(out, name)
		}
	}
	return out, nil
}
