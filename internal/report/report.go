// Package report renders a full experiment run — tables, notes, latency
// timelines, per-layer breakdowns, telemetry and flight-recorder dumps —
// into one static, self-contained HTML page. The page embeds no external
// assets and no timestamps, and every number is formatted with explicit
// strconv verbs, so the same inputs always produce the same bytes: CI can
// diff two reports the way it diffs two benchmark JSON files.
package report

import (
	"fmt"
	"html"
	"io"
	"strconv"
	"strings"

	"imca/internal/experiments"
)

// seriesColors are the fixed stroke colors for timeline percentile
// traces, in series order (p50, p95, p99, then wrapping).
var seriesColors = []string{"#2166ac", "#ef8a1e", "#b2182b", "#4dac26"}

// svgW and svgH are the fixed plot dimensions; margins leave room for the
// axis labels.
const (
	svgW       = 640
	svgH       = 200
	marginLeft = 60
	marginBot  = 24
	marginTop  = 10
)

// Write renders the results as one HTML page. It returns the first write
// error, if any.
func Write(w io.Writer, title string, results []*experiments.Result) error {
	ew := &errWriter{w: w}
	p := func(format string, args ...interface{}) { fmt.Fprintf(ew, format, args...) }

	p("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n")
	p("<title>%s</title>\n<style>\n%s</style>\n</head>\n<body>\n", html.EscapeString(title), css)
	p("<h1>%s</h1>\n", html.EscapeString(title))

	// Table of contents, in run order.
	p("<nav><ul>\n")
	for _, r := range results {
		p("<li><a href=\"#%s\">%s</a></li>\n", html.EscapeString(r.Name), html.EscapeString(r.Name))
	}
	p("</ul></nav>\n")

	for _, r := range results {
		writeResult(ew, r)
	}
	p("</body>\n</html>\n")
	return ew.err
}

func writeResult(w io.Writer, r *experiments.Result) {
	p := func(format string, args ...interface{}) { fmt.Fprintf(w, format, args...) }
	p("<section id=\"%s\">\n<h2>%s</h2>\n", html.EscapeString(r.Name), html.EscapeString(r.Name))

	if t := r.Table; t != nil {
		p("<h3>%s</h3>\n", html.EscapeString(t.Title))
		p("<table>\n<thead><tr><th>%s</th>", html.EscapeString(t.XLabel))
		for _, c := range t.Columns {
			p("<th>%s</th>", html.EscapeString(c))
		}
		p("</tr></thead>\n<tbody>\n")
		for i := 0; i < t.Rows(); i++ {
			p("<tr><td>%s</td>", html.EscapeString(t.X(i)))
			for _, c := range t.Columns {
				p("<td>%s</td>", formatCell(t.Value(i, c)))
			}
			p("</tr>\n")
		}
		p("</tbody>\n</table>\n")
		p("<p class=\"axis\">y: %s</p>\n", html.EscapeString(t.YLabel))
	}

	for _, n := range r.Notes {
		p("<p class=\"note\">%s</p>\n", html.EscapeString(n))
	}

	for _, tl := range r.Timelines {
		writeTimeline(w, tl)
	}

	for _, nb := range r.Breakdowns {
		p("<h3>%s</h3>\n", html.EscapeString(nb.Title))
		var sb strings.Builder
		nb.Breakdown.Report(&sb)
		p("<pre>%s</pre>\n", html.EscapeString(sb.String()))
	}
	for _, d := range r.Telemetry {
		p("<h3>%s</h3>\n", html.EscapeString(d.Title))
		p("<pre>%s</pre>\n", html.EscapeString(d.Text))
	}
	for _, d := range r.Flight {
		p("<h3>%s</h3>\n", html.EscapeString(d.Title))
		p("<pre>%s</pre>\n", html.EscapeString(d.Text))
	}
	p("</section>\n")
}

// writeTimeline renders one percentile timeline as an inline SVG line
// chart: x is virtual time over the run, y is microseconds.
func writeTimeline(w io.Writer, tl experiments.Timeline) {
	p := func(format string, args ...interface{}) { fmt.Fprintf(w, format, args...) }
	p("<h3>%s</h3>\n", html.EscapeString(tl.Title))
	if len(tl.TimesNs) == 0 {
		p("<p class=\"note\">(no samples)</p>\n")
		return
	}

	maxV := 0.0
	for _, s := range tl.Series {
		for _, v := range s.Values {
			if v > maxV {
				maxV = v
			}
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	maxT := tl.TimesNs[len(tl.TimesNs)-1]
	if maxT == 0 {
		maxT = 1
	}

	plotW := float64(svgW - marginLeft - 10)
	plotH := float64(svgH - marginTop - marginBot)
	xOf := func(tNs int64) float64 {
		return marginLeft + plotW*float64(tNs)/float64(maxT)
	}
	yOf := func(v float64) float64 {
		return marginTop + plotH*(1-v/maxV)
	}

	p("<svg width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\" role=\"img\">\n", svgW, svgH, svgW, svgH)
	// Axes.
	p("<line class=\"ax\" x1=\"%d\" y1=\"%s\" x2=\"%d\" y2=\"%s\"/>\n",
		marginLeft, fcoord(marginTop+plotH), svgW-10, fcoord(marginTop+plotH))
	p("<line class=\"ax\" x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%s\"/>\n",
		marginLeft, marginTop, marginLeft, fcoord(marginTop+plotH))
	// Axis extents.
	p("<text class=\"lab\" x=\"%d\" y=\"%d\" text-anchor=\"end\">%s µs</text>\n",
		marginLeft-4, marginTop+8, formatCell(maxV))
	p("<text class=\"lab\" x=\"%d\" y=\"%s\" text-anchor=\"end\">0</text>\n",
		marginLeft-4, fcoord(marginTop+plotH))
	p("<text class=\"lab\" x=\"%d\" y=\"%d\" text-anchor=\"end\">%s ms</text>\n",
		svgW-10, svgH-6, formatCell(float64(maxT)/1e6))
	// One polyline per series.
	for si, s := range tl.Series {
		color := seriesColors[si%len(seriesColors)]
		var pts strings.Builder
		for i, v := range s.Values {
			if i >= len(tl.TimesNs) {
				break
			}
			if i > 0 {
				pts.WriteByte(' ')
			}
			pts.WriteString(fcoord(xOf(tl.TimesNs[i])))
			pts.WriteByte(',')
			pts.WriteString(fcoord(yOf(v)))
		}
		p("<polyline class=\"tr\" stroke=\"%s\" points=\"%s\"/>\n", color, pts.String())
		// Legend entry.
		lx := marginLeft + 8 + si*90
		p("<rect x=\"%d\" y=\"%d\" width=\"10\" height=\"3\" fill=\"%s\"/>\n", lx, marginTop+4, color)
		p("<text class=\"lab\" x=\"%d\" y=\"%d\">%s</text>\n", lx+14, marginTop+9, html.EscapeString(s.Label))
	}
	p("</svg>\n")
}

// formatCell renders a table or label value with the same rules as the
// text renderer in internal/metrics, so the HTML and terminal views of one
// figure agree digit for digit.
func formatCell(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case v == 0:
		return "0"
	case av >= 1e6:
		return strconv.FormatFloat(v, 'g', 3, 64)
	case av >= 100:
		return strconv.FormatFloat(v, 'f', 0, 64)
	case av >= 1:
		return strconv.FormatFloat(v, 'f', 2, 64)
	default:
		return strconv.FormatFloat(v, 'f', 4, 64)
	}
}

// fcoord formats an SVG coordinate with fixed precision so layout is
// platform-independent.
func fcoord(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }

type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) Write(b []byte) (int, error) {
	if ew.err != nil {
		return 0, ew.err
	}
	n, err := ew.w.Write(b)
	ew.err = err
	return n, err
}

const css = `body { font: 14px/1.45 system-ui, sans-serif; margin: 2em auto; max-width: 72em; padding: 0 1em; color: #1a1a1a; }
h1 { font-size: 1.5em; } h2 { font-size: 1.2em; margin-top: 2em; border-bottom: 1px solid #ccc; }
h3 { font-size: 1em; margin-bottom: 0.3em; }
nav ul { columns: 3; list-style: none; padding: 0; }
table { border-collapse: collapse; margin: 0.5em 0; }
th, td { border: 1px solid #ccc; padding: 2px 8px; text-align: right; font-variant-numeric: tabular-nums; }
th:first-child, td:first-child { text-align: left; }
thead th { background: #f0f0f0; }
p.note { margin: 0.2em 0; color: #444; }
p.axis { margin: 0.2em 0; color: #888; font-size: 0.85em; }
pre { background: #f7f7f7; border: 1px solid #ddd; padding: 0.5em; overflow-x: auto; font-size: 12px; }
svg { margin: 0.5em 0; }
svg .ax { stroke: #999; stroke-width: 1; }
svg .tr { fill: none; stroke-width: 1.5; }
svg .lab { font: 10px system-ui, sans-serif; fill: #555; }
`
