// Sharedread: the paper's read/write-sharing scenario (§5.6). One node
// writes a file; many nodes read it back. Without IMCa every read hits the
// single GlusterFS server; with an intermediate MCD the readers are served
// by the cache bank. The example runs both configurations and prints the
// per-read latency each achieved.
//
// Run with:
//
//	go run ./examples/sharedread
package main

import (
	"fmt"

	"imca/internal/cluster"
	"imca/internal/workload"
)

const (
	readers    = 16
	recordSize = 4096
	records    = 128
)

func run(mcds int) (perOp float64, label string) {
	opts := cluster.Options{Clients: readers}
	label = "GlusterFS (NoCache)"
	if mcds > 0 {
		opts.MCDs = mcds
		opts.MCDMemBytes = 256 << 20
		label = fmt.Sprintf("IMCa (%d MCD)", mcds)
	}
	c := cluster.New(opts)
	res := workload.Latency(c.Env, c.FSes(), workload.LatencyOptions{
		Dir:         "/share",
		RecordSizes: []int64{recordSize},
		Records:     records,
		Shared:      true, // client 0 writes, everyone reads the same file
	})
	return float64(res.Read[recordSize]) / 1e3, label
}

func main() {
	fmt.Printf("%d readers, one shared file, %d x %dB records\n\n", readers, records, recordSize)
	noCache, l1 := run(0)
	withMCD, l2 := run(1)
	fmt.Printf("%-22s %8.1f µs/read\n", l1, noCache)
	fmt.Printf("%-22s %8.1f µs/read\n", l2, withMCD)
	fmt.Printf("\nintermediate cache cuts shared-read latency by %.0f%%\n",
		100*(noCache-withMCD)/noCache)
}
