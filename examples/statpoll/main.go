// Statpoll: the paper's motivating producer/consumer pattern (§4.2). A
// producer appends records to a shared file; consumers poll the file's
// modification time with stat instead of using locks, and read the new
// data when mtime advances. With IMCa, the polling storm is absorbed by
// the MCD bank instead of hammering the file server.
//
// Run with:
//
//	go run ./examples/statpoll
package main

import (
	"fmt"
	"time"

	"imca/internal/blob"
	"imca/internal/cluster"
	"imca/internal/gluster"
	"imca/internal/sim"
)

const (
	consumers  = 8
	records    = 20
	recordSize = 4096
	pollEvery  = 500 * time.Microsecond
)

func main() {
	c := cluster.New(cluster.Options{
		Clients:     1 + consumers,
		MCDs:        2,
		MCDMemBytes: 64 << 20,
	})

	producer := c.Mounts[0].FS
	done := false

	c.Env.Process("producer", func(p *sim.Proc) {
		fd, err := producer.Create(p, "/feed/log")
		if err != nil {
			panic(err)
		}
		for i := 0; i < records; i++ {
			p.Sleep(2 * time.Millisecond) // produce at ~500 records/s
			off := int64(i) * recordSize
			if _, err := producer.Write(p, fd, off, blob.Synthetic(1, off, recordSize)); err != nil {
				panic(err)
			}
		}
		done = true
	})

	consumed := make([]int, consumers)
	for ci := 0; ci < consumers; ci++ {
		ci := ci
		fs := c.Mounts[1+ci].FS
		c.Env.Process(fmt.Sprintf("consumer%d", ci), func(p *sim.Proc) {
			// Wait for the file to appear.
			var fd gluster.FD
			for {
				var err error
				if fd, err = fs.Open(p, "/feed/log"); err == nil {
					break
				}
				p.Sleep(pollEvery)
			}
			var lastSize int64
			for !done || consumed[ci] < records {
				p.Sleep(pollEvery)
				st, err := fs.Stat(p, "/feed/log") // served by the MCD bank
				if err != nil || st.Size == lastSize {
					continue
				}
				// New data: read just the delta.
				data, err := fs.Read(p, fd, lastSize, st.Size-lastSize)
				if err != nil {
					panic(err)
				}
				consumed[ci] += int(data.Len() / recordSize)
				lastSize = st.Size
			}
		})
	}

	c.Env.Run()

	total := 0
	for _, n := range consumed {
		total += n
	}
	fmt.Printf("producer wrote %d records; %d consumers consumed %d records total\n",
		records, consumers, total)

	var statHits, statMisses uint64
	for _, m := range c.Mounts {
		statHits += m.CMCache.Stats.StatHits
		statMisses += m.CMCache.Stats.StatMisses
	}
	fmt.Printf("stat polls: %d served by the MCD bank, %d reached the server\n",
		statHits, statMisses)
	fmt.Printf("the file server handled only %d stat calls for %d polls\n",
		c.Server.Ops["stat"], statHits+statMisses)
}
