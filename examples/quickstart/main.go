// Quickstart: deploy a simulated IMCa cluster (GlusterFS + a MemCached
// bank), write a file, and watch reads and stats get served by the cache
// instead of the server.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"imca/internal/blob"
	"imca/internal/cluster"
	"imca/internal/sim"
)

func main() {
	// One client, two MCDs with 64 MB each, 2 KB cache blocks — a small
	// IMCa deployment on a virtual InfiniBand (IPoIB) network.
	c := cluster.New(cluster.Options{
		Clients:     1,
		MCDs:        2,
		MCDMemBytes: 64 << 20,
		BlockSize:   2048,
	})
	fs := c.Mounts[0].FS

	c.Env.Process("quickstart", func(p *sim.Proc) {
		fd, err := fs.Create(p, "/demo/hello.dat")
		if err != nil {
			panic(err)
		}

		// Write 64 KB; IMCa forwards writes to the server (persistence),
		// then the server-side translator feeds the blocks to the MCDs.
		payload := blob.Synthetic(42, 0, 64<<10)
		start := p.Now()
		if _, err := fs.Write(p, fd, 0, payload); err != nil {
			panic(err)
		}
		fmt.Printf("write 64KB:            %8v\n", p.Now().Sub(start))

		// This read never reaches the GlusterFS server: every 2 KB block
		// comes from the MCD bank.
		start = p.Now()
		data, err := fs.Read(p, fd, 0, 64<<10)
		if err != nil || !data.Equal(payload) {
			panic("read mismatch")
		}
		fmt.Printf("read 64KB (cache hit): %8v\n", p.Now().Sub(start))

		// Stat is also served from the cache.
		start = p.Now()
		st, err := fs.Stat(p, "/demo/hello.dat")
		if err != nil {
			panic(err)
		}
		fmt.Printf("stat (cache hit):      %8v  -> size=%d mtime=%v\n",
			p.Now().Sub(start), st.Size, st.Mtime)
	})
	c.Env.Run()

	cm := c.Mounts[0].CMCache
	fmt.Printf("\nclient translator: %d/%d reads served from cache, %d/%d stats\n",
		cm.Stats.ReadHits, cm.Stats.ReadHits+cm.Stats.ReadMisses,
		cm.Stats.StatHits, cm.Stats.StatHits+cm.Stats.StatMisses)
	fmt.Printf("server saw %d reads and %d stats (everything else was absorbed by the MCD bank)\n",
		c.Server.Ops["read"], c.Server.Ops["stat"])
	bank := c.BankStats()
	fmt.Printf("MCD bank: %d items, %d gets (%d hits), %d sets\n",
		bank.CurrItems, bank.CmdGet, bank.GetHits, bank.CmdSet)
}
