// Memcachetcp: the memcached reimplementation is not only a simulation
// artifact — it speaks the real text protocol over TCP. This example
// starts two daemons on loopback, connects a client that distributes keys
// with the same CRC32 hash libmemcache uses, and exercises the core
// command set.
//
// Run with:
//
//	go run ./examples/memcachetcp
package main

import (
	"fmt"
	"log"

	"imca/internal/blob"
	"imca/internal/memcache"
)

func main() {
	// Two daemons, 32 MB each.
	var addrs []string
	for i := 0; i < 2; i++ {
		srv := memcache.NewServer(32 << 20)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		addrs = append(addrs, addr.String())
		fmt.Printf("memcached #%d listening on %s\n", i, addr)
	}

	cl, err := memcache.Dial(addrs...)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	// Keys spread across both daemons by CRC32, exactly as IMCa's
	// CMCache/SMCache distribute file blocks across the MCD bank.
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("/bench/file1:%d", i*2048)
		if err := cl.Set(&memcache.Item{Key: key, Value: blob.FromString(fmt.Sprintf("block-%d", i))}); err != nil {
			log.Fatal(err)
		}
	}

	it, err := cl.Get("/bench/file1:4096")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("get /bench/file1:4096 -> %q\n", it.Value.Bytes())

	keys := []string{"/bench/file1:0", "/bench/file1:2048", "/bench/file1:6144", "/bench/missing:0"}
	items, err := cl.GetMulti(keys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multi-get found %d of %d keys\n", len(items), len(keys))

	_ = cl.Set(&memcache.Item{Key: "counter", Value: blob.FromString("41")})
	if v, err := cl.Incr("counter", 1); err == nil {
		fmt.Printf("incr counter -> %d\n", v)
	}

	stats, err := cl.ServerStats()
	if err != nil {
		log.Fatal(err)
	}
	// Iterate the daemons in listen order, not map order, so the report
	// prints identically every run.
	for _, addr := range addrs {
		m := stats[addr]
		fmt.Printf("%s: curr_items=%s get_hits=%s get_misses=%s\n",
			addr, m["curr_items"], m["get_hits"], m["get_misses"])
	}
}
