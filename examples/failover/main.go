// Failover: the paper's §4.4 resilience claim, live. Writes are always
// persistent at the file server before the MCD bank is updated, so killing
// cache daemons — even the whole bank — never loses data; it only costs
// latency until the bank repopulates.
//
// Run with:
//
//	go run ./examples/failover
package main

import (
	"fmt"

	"imca/internal/blob"
	"imca/internal/cluster"
	"imca/internal/sim"
)

func main() {
	c := cluster.New(cluster.Options{
		Clients:     1,
		MCDs:        2,
		MCDMemBytes: 64 << 20,
		BlockSize:   2048,
	})
	fs := c.Mounts[0].FS

	c.Env.Process("demo", func(p *sim.Proc) {
		fd, err := fs.Create(p, "/critical/ledger")
		if err != nil {
			panic(err)
		}
		payload := blob.Synthetic(99, 0, 64<<10)
		_, _ = fs.Write(p, fd, 0, payload)

		timeRead := func(label string) {
			start := p.Now()
			got, err := fs.Read(p, fd, 0, 64<<10)
			if err != nil || !got.Equal(payload) {
				panic("data lost!")
			}
			fmt.Printf("%-34s %10v  (data intact)\n", label, p.Now().Sub(start))
		}

		timeRead("read, bank healthy (hit):")

		fmt.Println("\n*** killing MCD #0 (half the bank, contents lost) ***")
		c.MCDs[0].Fail()
		timeRead("read, MCD #0 dead:")

		fmt.Println("\n*** killing MCD #1 (entire bank down) ***")
		c.MCDs[1].Fail()
		timeRead("read, whole bank dead:")

		fmt.Println("\n*** restarting both daemons (empty) ***")
		c.MCDs[0].Recover()
		c.MCDs[1].Recover()
		timeRead("read, bank cold (repopulating):")
		timeRead("read, bank warm again:")

		// And a write during a total outage still persists.
		c.MCDs[0].Fail()
		c.MCDs[1].Fail()
		_, _ = fs.Write(p, fd, 64<<10, blob.Synthetic(99, 64<<10, 4096))
		c.MCDs[0].Recover()
		c.MCDs[1].Recover()
		st, _ := fs.Stat(p, "/critical/ledger")
		fmt.Printf("\nwrite during total outage persisted: size now %d bytes\n", st.Size)
	})
	c.Env.Run()

	cm := c.Mounts[0].CMCache
	fmt.Printf("\ntranslator saw %d hits and %d misses; correctness never depended on the bank\n",
		cm.Stats.ReadHits, cm.Stats.ReadMisses)
}
