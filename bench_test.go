// Benchmarks regenerating each of the paper's tables and figures (one
// bench per figure) plus ablations for the design choices DESIGN.md calls
// out. Each iteration runs the full (scaled-down) experiment; custom
// metrics report the figure's headline quantity so `go test -bench` output
// doubles as a compact reproduction table.
//
// Absolute ns/op values measure simulator wall time, not the modeled
// system; the reported custom metrics (µs/op of virtual time, MB/s of
// virtual bandwidth, reduction percentages) are the reproduced results.
package imca_test

import (
	"testing"

	"imca/internal/cluster"
	"imca/internal/experiments"
	"imca/internal/memcache"
	"imca/internal/metrics"
	"imca/internal/workload"
)

// benchScale keeps each iteration fast; cmd/imcabench runs finer scales.
const benchScale = 256

func benchOpts() experiments.Options { return experiments.Options{Scale: benchScale} }

func BenchmarkFig1NFSBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig1a(benchOpts())
		last := res.Table.LastRow()
		b.ReportMetric(last["RDMA"], "RDMA-MB/s")
		b.ReportMetric(last["GigE"], "GigE-MB/s")
	}
}

func BenchmarkFig5Stat(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig5(benchOpts())
		last := res.Table.LastRow()
		b.ReportMetric(100*metrics.Reduction(last["NoCache"], last["MCD(1)"]), "%cut-1mcd")
		b.ReportMetric(100*metrics.Reduction(last["Lustre-4DS"], last["MCD(6)"]), "%below-lustre")
	}
}

func BenchmarkFig6aReadLatencySmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig6a(benchOpts())
		b.ReportMetric(res.Table.Value(0, "NoCache"), "nocache-1B-µs")
		b.ReportMetric(res.Table.Value(0, "IMCa-2K"), "imca2k-1B-µs")
	}
}

func BenchmarkFig6bReadLatencyLarge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig6b(benchOpts())
		last := res.Table.Rows() - 1
		b.ReportMetric(res.Table.Value(last, "NoCache"), "nocache-µs")
		b.ReportMetric(res.Table.Value(last, "IMCa-256"), "imca256-µs")
	}
}

func BenchmarkFig6cWriteLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig6c(benchOpts())
		b.ReportMetric(res.Table.Value(3, "IMCa(inline)"), "inline-2K-µs")
		b.ReportMetric(res.Table.Value(3, "IMCa(threaded)"), "threaded-2K-µs")
	}
}

func BenchmarkFig7MultiClientLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig7a(benchOpts())
		b.ReportMetric(res.Table.Value(0, "NoCache"), "nocache-1B-µs")
		b.ReportMetric(res.Table.Value(0, "IMCa(4MCD)"), "imca4-1B-µs")
	}
}

func BenchmarkFig8ClientSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig8b(benchOpts())
		last := res.Table.Rows() - 1
		b.ReportMetric(res.Table.Value(last, "IMCa(1MCD)"), "imca-32c-µs")
		b.ReportMetric(res.Table.Value(last, "NoCache"), "nocache-32c-µs")
	}
}

func BenchmarkFig9Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig9(benchOpts())
		last := res.Table.LastRow()
		b.ReportMetric(last["IMCa(4MCD)"], "imca4-MB/s")
		b.ReportMetric(last["NoCache"], "nocache-MB/s")
	}
}

func BenchmarkFig10SharedFile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig10(benchOpts())
		last := res.Table.Rows() - 1
		b.ReportMetric(100*metrics.Reduction(
			res.Table.Value(last, "NoCache"), res.Table.Value(last, "IMCa(1MCD)")), "%cut")
	}
}

// --- Ablations (design choices from DESIGN.md) ---

// readLatency1B measures warm 1-byte read latency (µs) on one client for
// the given IMCa block size.
func readLatency1B(blockSize int64) float64 {
	c := cluster.New(cluster.Options{
		Clients: 1, MCDs: 1, MCDMemBytes: 64 << 20, BlockSize: blockSize,
		ServerCacheBytes: 64 << 20,
	})
	// Write 8K records first so the file is large enough that a 1-byte
	// read transfers a full cache block at every block size.
	res := workload.Latency(c.Env, c.FSes(), workload.LatencyOptions{
		Dir: "/abl", RecordSizes: []int64{8192, 1}, Records: 64,
	})
	return float64(res.Read[1]) / 1e3
}

func BenchmarkAblationBlockSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.ReportMetric(readLatency1B(256), "256B-µs")
		b.ReportMetric(readLatency1B(2048), "2K-µs")
		b.ReportMetric(readLatency1B(8192), "8K-µs")
	}
}

func writeLatency2K(threaded bool) float64 {
	c := cluster.New(cluster.Options{
		Clients: 1, MCDs: 1, MCDMemBytes: 64 << 20, BlockSize: 2048, Threaded: threaded,
		ServerCacheBytes: 64 << 20,
	})
	res := workload.Latency(c.Env, c.FSes(), workload.LatencyOptions{
		Dir: "/abl", RecordSizes: []int64{2048}, Records: 64,
	})
	return float64(res.Write[2048]) / 1e3
}

func BenchmarkAblationThreadedUpdates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.ReportMetric(writeLatency2K(false), "inline-µs")
		b.ReportMetric(writeLatency2K(true), "threaded-µs")
	}
}

func throughputWithSelector(sel memcache.Selector) float64 {
	c := cluster.New(cluster.Options{
		Clients: 4, MCDs: 4, MCDMemBytes: 64 << 20, BlockSize: 2048,
		Selector: sel, ServerCacheBytes: 64 << 20,
	})
	res := workload.Throughput(c.Env, c.FSes(), workload.ThroughputOptions{
		Dir: "/abl", FileSize: 4 << 20, RecordSize: 64 << 10,
	})
	return res.ReadBps / 1e6
}

func BenchmarkAblationSelector(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.ReportMetric(throughputWithSelector(memcache.CRC32Selector{}), "crc32-MB/s")
		b.ReportMetric(throughputWithSelector(memcache.BlockModuloSelector{BlockSize: 2048}), "modulo-MB/s")
	}
}

func statTime(mcds int) float64 {
	opts := cluster.Options{Clients: 32, ServerCacheBytes: 64 << 20}
	if mcds > 0 {
		opts.MCDs = mcds
		opts.MCDMemBytes = 64 << 20
	}
	c := cluster.New(opts)
	workload.CreateFiles(c.Env, c.Mounts[0].FS, "/abl", 256)
	return workload.StatBench(c.Env, c.FSes(), "/abl", 256).Seconds() * 1e3
}

func BenchmarkAblationMCDCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.ReportMetric(statTime(0), "nocache-ms")
		b.ReportMetric(statTime(1), "1mcd-ms")
		b.ReportMetric(statTime(4), "4mcd-ms")
	}
}
