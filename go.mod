module imca

go 1.22
